"""Dodin-style series-parallel makespan evaluation.

Dodin's method (Operations Research 1985) evaluates the completion-time
distribution of an activity network by repeatedly applying two exact
reductions to the activity-on-arc form:

* **series** — a vertex with one incoming and one outgoing arc is removed,
  the two arc distributions convolved;
* **parallel** — two arcs sharing both endpoints are merged, their
  distributions combined with the independent maximum.

On series-parallel graphs this is *exact* up to grid resolution — in
particular, shared path prefixes (e.g. the common ancestor of a diamond) are
factored out *before* any maximum is taken, which the plain independence
assumption gets wrong.  For irreducible (non-SP) graphs Dodin's original
method duplicates nodes; we instead stop and evaluate the remaining reduced
core with the independence assumption, an approximation the paper itself
adopted after observing that Dodin, Spelde and the classical method "gave
similar results".

The schedule's disjunctive graph is converted to activity-on-arc form: task
``v`` becomes vertices ``in(v) → out(v)`` carrying its duration RV; each
dependency becomes an arc carrying its communication RV (a point mass at 0
for same-processor and disjunctive arcs).

Two hot-path rewrites (both bit-identical to the frozen oracles in
:mod:`repro.analysis._reference`):

* :func:`_reduce` drives the series/parallel fixpoint from a **worklist**
  seeded with the endpoints touched by each splice/merge instead of
  rescanning every node and edge per iteration (the historical fixpoint is
  quadratic on long chains).  Candidates are visited in the same
  node-insertion order as the historical full scan, so the reduction
  *order* — and therefore every convolution association — is unchanged.
* :func:`_longest_path_rv` walks the reduced core level-synchronously
  through the batched grid-RV engine
  (:class:`~repro.stochastic.batch.BatchedGridEngine`).
"""

from __future__ import annotations

import heapq

import networkx as nx
import numpy as np

from repro.schedule.schedule import Schedule
from repro.stochastic.batch import BatchedGridEngine
from repro.stochastic.model import StochasticModel
from repro.stochastic.rv import NumericRV

__all__ = ["dodin_makespan"]

_SOURCE = -1
_SINK = -2


def _activity_network(
    schedule: Schedule,
    model: StochasticModel,
    engine: BatchedGridEngine | None = None,
) -> nx.MultiDiGraph:
    w = schedule.workload
    dis = schedule.disjunctive()
    proc = schedule.proc
    edge_comm = schedule.edge_min_comm()
    pos, ep, src = dis.topo_pos, dis.edge_ptr, dis.edge_src
    rv = (engine.rv if engine is not None else model.rv)
    zero = engine.point(0.0) if engine is not None else None
    g = nx.MultiDiGraph()

    def vin(v: int) -> tuple[str, int]:
        return ("in", v)

    def vout(v: int) -> tuple[str, int]:
        return ("out", v)

    def zero_rv() -> NumericRV:
        return zero if zero is not None else NumericRV.point(0.0)

    n = w.n_tasks
    for v in range(n):
        g.add_edge(vin(v), vout(v), rv=rv(w.duration(v, int(proc[v]))))
    has_succ = np.zeros(n, dtype=bool)
    has_succ[src] = True
    for v in range(n):
        i = int(pos[v])
        for e in range(int(ep[i]), int(ep[i + 1])):
            c = float(edge_comm[e])
            g.add_edge(
                vout(int(src[e])), vin(v), rv=rv(c) if c > 0 else zero_rv()
            )
    indeg_zero = np.flatnonzero(ep[pos + 1] == ep[pos])
    for v in indeg_zero:
        g.add_edge(_SOURCE, vin(int(v)), rv=zero_rv())
    for v in np.flatnonzero(~has_succ):
        g.add_edge(vout(int(v)), _SINK, rv=zero_rv())
    return g


def _reduce(g: nx.MultiDiGraph, fast_conv: bool = False) -> None:
    """Series/parallel reduction fixpoint, worklist-driven.

    Equivalent to the historical full-rescan fixpoint
    (:func:`repro.analysis._reference.dodin_reduce_reference`) with the
    identical reduction order — each pass merges the pending multi-arc
    pairs, then splices pending degree-(1,1) vertices in node-insertion
    order, exactly as the full scan visits them; only vertices whose
    degrees were touched since their last visit are ever re-examined.  The
    work is therefore proportional to the reductions performed instead of
    (passes × graph size).

    ``fast_conv`` threads the fast precision policy into the per-op
    ``add``/``maximum`` calls (the reduction operates on RV methods
    directly, not through an engine).
    """
    order = {v: i for i, v in enumerate(g.nodes)}
    pend_pairs = {(a, b) for a, b, _ in g.edges(keys=True)}
    pend_nodes = set(g.nodes)
    while pend_pairs or pend_nodes:
        next_pairs: set = set()
        next_nodes: set = set()
        # Parallel phase: merge multi-arcs between pending vertex pairs.
        for a, b in pend_pairs:
            keys = list(g[a][b].keys()) if g.has_edge(a, b) else []
            if len(keys) > 1:
                rv = g[a][b][keys[0]]["rv"]
                for k in keys[1:]:
                    rv = rv.maximum(g[a][b][k]["rv"], fast=fast_conv)
                g.remove_edges_from([(a, b, k) for k in keys])
                g.add_edge(a, b, rv=rv)
                # Merges change degrees: both endpoints become series
                # candidates of this pass (the full scan visits them after
                # its parallel phase too).
                pend_nodes.add(a)
                pend_nodes.add(b)
        # Series phase: splice pending degree-(1,1) vertices in insertion
        # order.  A splice may enable a neighbour — if the neighbour sits
        # later in insertion order the full scan would still reach it this
        # pass, otherwise only on the next pass; the heap reproduces that.
        heap = [order[v] for v in pend_nodes if v in g]
        heapq.heapify(heap)
        by_order = {order[v]: v for v in pend_nodes if v in g}
        seen: set = set()
        while heap:
            idx = heapq.heappop(heap)
            if idx in seen:
                continue
            seen.add(idx)
            v = by_order[idx]
            if v not in g or (isinstance(v, int) and v < 0):
                continue
            if g.in_degree(v) != 1 or g.out_degree(v) != 1:
                continue
            (a, _, ka) = next(iter(g.in_edges(v, keys=True)))
            (_, b, kb) = next(iter(g.out_edges(v, keys=True)))
            if a == v or b == v:  # pragma: no cover - self-loops impossible
                continue
            rv = g[a][v][ka]["rv"].add(g[v][b][kb]["rv"], fast=fast_conv)
            g.remove_node(v)
            if a == b:  # pragma: no cover - would be a cycle
                continue
            g.add_edge(a, b, rv=rv)
            if g.number_of_edges(a, b) > 1:
                next_pairs.add((a, b))
            for u in (a, b):
                if isinstance(u, int) and u < 0:
                    continue
                if order[u] > idx:
                    if order[u] not in seen:
                        by_order[order[u]] = u
                        heapq.heappush(heap, order[u])
                else:
                    next_nodes.add(u)
        pend_pairs = next_pairs
        pend_nodes = next_nodes


def _longest_path_rv(
    g: nx.MultiDiGraph, engine: BatchedGridEngine
) -> NumericRV:
    """Independence-assumption evaluation of the (reduced) network.

    Level-synchronous: each topological generation's arrival sums and join
    maxima are dispatched as batched engine steps (per-node operand order
    unchanged, hence bit-identical to the sequential walk).
    """
    arrival: dict = {}
    for generation in nx.topological_generations(g):
        pairs: list[tuple[NumericRV, NumericRV]] = []
        slots: list[tuple] = []
        for v in generation:
            k0 = len(pairs)
            for a, _, data in g.in_edges(v, data=True):
                pairs.append((arrival[a], data["rv"]))
            slots.append((v, k0, len(pairs)))
        sums = engine.add_pairs(pairs)
        groups = [sums[k0:k1] for _, k0, k1 in slots if k1 > k0]
        maxima = iter(engine.max_groups(groups))
        for v, k0, k1 in slots:
            arrival[v] = next(maxima) if k1 > k0 else engine.point(0.0)
    return arrival[_SINK]


def dodin_makespan(
    schedule: Schedule,
    model: StochasticModel,
    engine: BatchedGridEngine | None = None,
) -> NumericRV:
    """Makespan RV via series-parallel reduction (independence fallback)."""
    eng = BatchedGridEngine(model) if engine is None else engine
    g = _activity_network(schedule, model, engine=eng)
    _reduce(g, fast_conv=eng.fast_conv)
    if g.number_of_edges() == 1:
        _, _, data = next(iter(g.edges(data=True)))
        return data["rv"]
    return _longest_path_rv(g, eng)
