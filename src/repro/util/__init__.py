"""Small shared utilities (RNG handling, validation, text tables)."""

from repro.util.rng import as_generator, spawn_generators
from repro.util.tables import format_matrix, format_table

__all__ = [
    "as_generator",
    "spawn_generators",
    "format_matrix",
    "format_table",
]
