"""Plain-text rendering of result tables and matrices.

The experiment harness reports everything as monospace text (the paper's
figures are scatter matrices and log plots; we report the underlying numbers
as tables so they can be diffed against ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.4g}",
) -> str:
    """Render ``rows`` as an aligned monospace table with ``headers``."""
    rendered: list[list[str]] = [list(map(str, headers))]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float) or isinstance(cell, np.floating):
                cells.append(float_fmt.format(float(cell)))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    n_cols = max(len(r) for r in rendered)
    widths = [0] * n_cols
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    for i, row in enumerate(rendered):
        line = "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row))
        lines.append(line)
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(row))))
    return "\n".join(lines)


def format_matrix(
    matrix: np.ndarray,
    labels: Sequence[str],
    float_fmt: str = "{:+.3f}",
    lower: np.ndarray | None = None,
) -> str:
    """Render a square matrix with row/column ``labels``.

    When ``lower`` is given, the strict lower triangle of the output shows
    ``lower`` instead of ``matrix`` — this mirrors the paper's Figure 6 where
    the upper triangle holds mean Pearson coefficients and the lower triangle
    their standard deviations.
    """
    matrix = np.asarray(matrix, dtype=float)
    k = matrix.shape[0]
    if matrix.shape != (k, k):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    if len(labels) != k:
        raise ValueError("labels length must match matrix size")
    headers = [""] + list(labels)
    rows = []
    for i in range(k):
        row: list[object] = [labels[i]]
        for j in range(k):
            value = matrix[i, j]
            if lower is not None and i > j:
                value = lower[i, j]
            if i == j:
                row.append("·")
            else:
                row.append(float_fmt.format(float(value)))
        rows.append(row)
    return format_table(headers, rows)
