"""Deterministic random-number-generator plumbing.

Every stochastic entry point in :mod:`repro` accepts either an integer seed,
``None`` (fresh OS entropy) or a :class:`numpy.random.Generator`.  These
helpers normalise that convention and derive statistically independent child
generators for sub-experiments, so a whole experiment suite is reproducible
from one integer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an existing generator (returned as-is), an integer, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | None | np.random.Generator, n: int
) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Children are derived with :class:`numpy.random.SeedSequence` spawning so
    that streams do not overlap, regardless of how many draws each child
    makes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        children: Sequence[np.random.SeedSequence] = seq.spawn(n)
    else:
        children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(child) for child in children]
