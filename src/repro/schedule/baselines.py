"""Extension baselines: greedy EFT and the σ-HEFT future-work heuristic.

* :func:`greedy_eft` — dynamic list scheduling: at every step, among all
  ready tasks, commit the (task, processor) pair with the globally smallest
  earliest finish time (a DAG flavour of min-min).
* :func:`sigma_heft` — the paper's future-work idea (§VIII): run HEFT on
  *risk-adjusted* costs ``mean + k·σ`` instead of minimum costs, so that the
  ranking and the processor choice both prefer low-variance options.  With
  the paper's fixed-UL model σ is proportional to the mean, so ``k`` mostly
  matters when comparing machines with different speeds; the ablation bench
  measures whether it buys robustness.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule.heft import heft
from repro.schedule.schedule import Schedule
from repro.stochastic.model import StochasticModel

__all__ = ["greedy_eft", "sigma_heft"]


def greedy_eft(workload: Workload, label: str = "greedy-EFT") -> Schedule:
    """Dynamic min-min-style list scheduler (no insertion)."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    ready = {v for v in range(n) if remaining_preds[v] == 0}
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    while ready:
        best = None  # (eft, task, proc, start)
        for t in sorted(ready):
            for p in range(m):
                est = avail[p]
                for u in graph.predecessors(t):
                    comm = 0.0
                    if int(proc[u]) != p:
                        comm = workload.platform.comm_time(
                            graph.volume(u, t), int(proc[u]), p
                        )
                    est = max(est, finish[u] + comm)
                eft = est + workload.comp[t, p]
                if best is None or eft < best[0] - 1e-12:
                    best = (eft, t, p, est)
        eft, t, p, start = best  # type: ignore[misc]
        proc[t] = p
        finish[t] = eft
        avail[p] = eft
        sequence.append((t, p))
        ready.remove(t)
        for s in graph.successors(t):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                ready.add(s)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)


def sigma_heft(
    workload: Workload,
    model: StochasticModel,
    k: float = 1.0,
    label: str | None = None,
    task_ul: np.ndarray | None = None,
) -> Schedule:
    """HEFT on risk-adjusted costs ``E[d] + k·σ[d]`` (paper future work).

    ``model`` supplies the closed-form mean and standard deviation of each
    duration under the uncertainty level; ``k`` is the risk weight (0
    reduces to HEFT on mean durations).

    ``task_ul`` optionally overrides the uncertainty level per task (shape
    ``(n_tasks,)``) — the variable-UL scenario of §VIII.  This is where the
    heuristic becomes genuinely different from HEFT: with a fixed UL, σ is
    proportional to the mean and the risk adjustment cannot change any
    ordering, but with per-task ULs the ranking starts avoiding noisy tasks'
    worst placements.
    """
    if k < 0:
        raise ValueError(f"risk weight k must be ≥ 0, got {k}")
    comp = workload.comp
    if task_ul is None:
        mean = np.asarray(model.mean(comp))
        std = np.asarray(model.std(comp))
    else:
        task_ul = np.asarray(task_ul, dtype=float)
        if task_ul.shape != (workload.n_tasks,):
            raise ValueError(
                f"task_ul must have shape ({workload.n_tasks},), got {task_ul.shape}"
            )
        if np.any(task_ul < 1.0):
            raise ValueError("per-task uncertainty levels must be ≥ 1")
        beta_mean = model.alpha / (model.alpha + model.beta)
        beta_var = (
            model.alpha
            * model.beta
            / ((model.alpha + model.beta) ** 2 * (model.alpha + model.beta + 1.0))
        )
        spread = (task_ul - 1.0)[:, None] * comp
        mean = comp * (1.0 + (task_ul - 1.0)[:, None] * beta_mean)
        std = spread * np.sqrt(beta_var)
    adjusted = mean + k * std
    return heft(
        workload,
        comp=adjusted,
        durations=adjusted.mean(axis=1),
        label=label if label is not None else f"sigma-HEFT(k={k:g})",
    )
