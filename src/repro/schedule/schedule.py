"""The eager :class:`Schedule` representation.

A schedule is fully determined by the task → processor assignment and the
per-processor execution orders; start/finish times for the *minimum*
(deterministic) durations are derived by the eager replay and cached, along
with the disjunctive graph that every uncertainty analysis reuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.platform.platform import Platform
from repro.platform.workload import Workload
from repro.schedule.disjunctive import DisjunctiveGraph

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """An eager schedule of a workload.

    Use :meth:`from_proc_orders` (general) or
    :meth:`from_assignment_sequence` (for list schedulers that append tasks)
    rather than the raw constructor.

    Attributes
    ----------
    workload:
        The scheduled workload.
    proc:
        ``(n,)`` array, processor of each task.
    orders:
        Tuple (one entry per processor) of task tuples in execution order.
    start, finish:
        Deterministic eager times under minimum durations.
    label:
        Optional provenance tag (``"random"``, ``"HEFT"``, …).
    """

    workload: Workload
    proc: np.ndarray
    orders: tuple[tuple[int, ...], ...]
    start: np.ndarray
    finish: np.ndarray
    label: str = ""
    _disjunctive: DisjunctiveGraph = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_proc_orders(
        cls,
        workload: Workload,
        proc: Sequence[int] | np.ndarray,
        orders: Sequence[Sequence[int]],
        label: str = "",
    ) -> "Schedule":
        """Build a schedule from an assignment and per-processor orders.

        Start/finish times are computed by eager replay of the disjunctive
        graph with minimum durations; consistency (partition, acyclicity,
        assignment/order agreement) is validated.
        """
        proc = np.asarray(proc, dtype=np.intp)
        n, m = workload.n_tasks, workload.m
        if proc.shape != (n,):
            raise ValueError(f"proc must have shape ({n},), got {proc.shape}")
        if len(orders) != m:
            raise ValueError(f"need one order per processor ({m}), got {len(orders)}")
        if np.any(proc < 0) or np.any(proc >= m):
            raise ValueError("processor assignment out of range")
        for p, order in enumerate(orders):
            for t in order:
                if proc[t] != p:
                    raise ValueError(
                        f"task {t} is in processor {p}'s order but assigned to {proc[t]}"
                    )
        orders_t = tuple(tuple(int(t) for t in order) for order in orders)
        dis = DisjunctiveGraph.build(workload.graph, orders_t)
        start, finish = _replay(workload, proc, dis)
        return cls(
            workload=workload,
            proc=proc,
            orders=orders_t,
            start=start,
            finish=finish,
            label=label,
            _disjunctive=dis,
        )

    @classmethod
    def from_assignment_sequence(
        cls,
        workload: Workload,
        sequence: Sequence[tuple[int, int]],
        label: str = "",
    ) -> "Schedule":
        """Build from a ``[(task, proc), …]`` list in scheduling order.

        Tasks are appended to their processor's order in sequence order —
        the natural output format of ready-list schedulers.
        """
        proc = np.full(workload.n_tasks, -1, dtype=np.intp)
        orders: list[list[int]] = [[] for _ in range(workload.m)]
        for task, p in sequence:
            if proc[task] != -1:
                raise ValueError(f"task {task} scheduled twice")
            proc[task] = p
            orders[p].append(task)
        if np.any(proc == -1):
            raise ValueError("assignment sequence does not cover all tasks")
        return cls.from_proc_orders(workload, proc, orders, label=label)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def makespan(self) -> float:
        """Deterministic (minimum-duration) makespan."""
        return float(self.finish.max())

    def disjunctive(self) -> DisjunctiveGraph:
        """The cached disjunctive graph of this schedule."""
        return self._disjunctive

    def min_durations(self) -> np.ndarray:
        """Minimum duration of each task on its assigned processor."""
        return self.workload.comp[np.arange(self.workload.n_tasks), self.proc]

    @cached_property
    def _edge_min_comm(self) -> np.ndarray:
        return _edge_min_comm(self.workload.platform, self._disjunctive)

    def edge_min_comm(self) -> np.ndarray:
        """Minimum communication time of every disjunctive CSR edge.

        Zero on chaining and same-processor edges; ``L + volume·τ`` on
        cross-processor application edges.  Cached — this is the per-edge
        delay vector every propagation kernel consumes.
        """
        return self._edge_min_comm

    @cached_property
    def _comm_edges(self) -> list[tuple[int, int, float]]:
        out = []
        for u, v, volume in self.workload.graph.edges():
            p, q = int(self.proc[u]), int(self.proc[v])
            if p != q:
                out.append((u, v, self.workload.platform.comm_time(volume, p, q)))
        return out

    def comm_edges(self) -> list[tuple[int, int, float]]:
        """Cross-processor application edges as ``(u, v, min_comm_time)``.

        Same-processor edges cost zero and are omitted.  Cached — do not
        mutate the returned list.
        """
        return self._comm_edges

    @cached_property
    def comm_edge_cols(self) -> np.ndarray:
        """``(E,)`` map from disjunctive CSR edge to :meth:`comm_edges` row.

        −1 on edges that carry no communication (chaining and
        same-processor edges).  This is the cached plumbing that lets the
        Monte-Carlo engine feed an edge-major sample block (one row per
        ``comm_edges`` entry) straight into the propagation kernel.
        """
        index = {
            (u, v): i for i, (u, v, _) in enumerate(self.comm_edges())
        }
        dis = self._disjunctive
        cols = np.full(dis.n_edges, -1, dtype=np.intp)
        for e in np.flatnonzero(dis.edge_cross):
            row = index.get((int(dis.edge_src[e]), int(dis.edge_dst[e])))
            if row is not None:
                cols[e] = row
        return cols

    def validate(self) -> None:
        """Re-check structural and temporal consistency (for tests/debugging).

        Verifies precedence-with-communication feasibility, per-processor
        non-overlap, and the eager property (no avoidable idle time) — all
        as vectorized passes over the disjunctive CSR arrays.
        """
        w = self.workload
        dis = self._disjunctive
        start, finish = self.start, self.finish
        dur = self.min_durations()
        if not np.allclose(finish, start + dur):
            raise ValueError("finish times do not equal start + duration")
        # Precedence with communication, over application edges.
        app = np.flatnonzero(dis.edge_is_app)
        arrival = finish[dis.edge_src[app]] + self.edge_min_comm()[app]
        bad = np.flatnonzero(start[dis.edge_dst[app]] < arrival - 1e-9)
        if bad.size:
            e = app[bad[0]]
            raise ValueError(
                f"precedence violated on edge "
                f"({int(dis.edge_src[e])}, {int(dis.edge_dst[e])})"
            )
        for p, order in enumerate(self.orders):
            if len(order) < 2:
                continue
            a = np.asarray(order[:-1], dtype=np.intp)
            b = np.asarray(order[1:], dtype=np.intp)
            bad = np.flatnonzero(start[b] < finish[a] - 1e-9)
            if bad.size:
                i = bad[0]
                raise ValueError(
                    f"overlap between tasks {int(a[i])} and {int(b[i])} on proc {p}"
                )
        # Eagerness: each task starts exactly at its ready time.
        ready = np.zeros(w.n_tasks)
        np.maximum.at(ready, dis.edge_dst, finish[dis.edge_src] + self.edge_min_comm())
        if not np.allclose(ready, start, atol=1e-9):
            raise ValueError("schedule is not eager (avoidable idle time found)")

    def signature(self) -> tuple:
        """Hashable identity of this schedule (assignment + orders).

        Two schedules with equal signatures have identical realizations
        under every duration model.  Used to check the paper's §V remark
        that "even for the smallest graphs, the probability to get the same
        random schedule twice is not high".
        """
        return (tuple(int(p) for p in self.proc), self.orders)

    def gantt_text(self, width: int = 72) -> str:
        """Plain-text Gantt chart of the deterministic schedule.

        One row per processor; each task is drawn as ``[id___]`` scaled to
        ``width`` characters over the makespan.  Intended for examples and
        debugging, not precise rendering — tasks shorter than two characters
        collapse to ``#``.
        """
        if width < 10:
            raise ValueError(f"width must be ≥ 10, got {width}")
        makespan = self.makespan
        if makespan <= 0:
            return "(empty schedule)"
        scale = width / makespan
        lines = []
        for p, order in enumerate(self.orders):
            row = [" "] * width
            for t in order:
                a = int(self.start[t] * scale)
                b = max(int(self.finish[t] * scale), a + 1)
                b = min(b, width)
                span = b - a
                label = str(t)
                if span >= len(label) + 2:
                    block = "[" + label.ljust(span - 2, "_") + "]"
                elif span >= 2:
                    block = "[" + "#" * (span - 2) + "]"
                else:
                    block = "#"
                for k, ch in enumerate(block[: width - a]):
                    row[a + k] = ch
            lines.append(f"P{p:<2d}|{''.join(row)}|")
        lines.append(f"    0{'·'.rjust(width - 6)} {makespan:.1f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = f" {self.label!r}" if self.label else ""
        return (
            f"Schedule({lbl} n={self.workload.n_tasks}, m={self.workload.m}, "
            f"makespan={self.makespan:.4g})"
        )


def _edge_min_comm(platform: Platform, dis: DisjunctiveGraph) -> np.ndarray:
    """Minimum comm time of every disjunctive CSR edge (vectorized L + c·τ)."""
    pu = dis.proc[dis.edge_src]
    pv = dis.proc[dis.edge_dst]
    return np.where(
        dis.edge_cross,
        platform.latency[pu, pv] + dis.edge_volume * platform.tau[pu, pv],
        0.0,
    )


def _replay(
    workload: Workload, proc: np.ndarray, dis: DisjunctiveGraph
) -> tuple[np.ndarray, np.ndarray]:
    """Eager start/finish times under minimum durations (level-synchronous)."""
    n = workload.n_tasks
    durations = workload.comp[np.arange(n), proc]
    return dis.propagate(durations, _edge_min_comm(workload.platform, dis))
