"""CPOP — Critical-Path-on-a-Processor (Topcuoglu, Hariri & Wu).

Extension baseline (the paper cites CPOP in its introduction but does not
evaluate it; we include it for completeness).  CPOP prioritizes tasks by
``rank_u + rank_d`` (upward + downward rank with mean costs), pins every
critical-path task onto the single processor minimizing the total
critical-path computation time, and schedules the rest by earliest finish
time with insertion.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule._timeline import Timeline
from repro.schedule.heft import upward_ranks
from repro.schedule.schedule import Schedule

__all__ = ["cpop", "downward_ranks"]


def downward_ranks(workload: Workload) -> np.ndarray:
    """Downward rank: longest mean-cost path from an entry, excluding self."""
    graph = workload.graph
    w = workload.mean_durations()
    ranks = np.zeros(graph.n_tasks)
    for v in graph.topological_order():
        v = int(v)
        for u in graph.predecessors(v):
            c = workload.mean_comm_time(u, v)
            ranks[v] = max(ranks[v], ranks[u] + w[u] + c)
    return ranks


def cpop(workload: Workload, label: str = "CPOP") -> Schedule:
    """Schedule ``workload`` with CPOP."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    ru = upward_ranks(workload)
    rd = downward_ranks(workload)
    priority = ru + rd
    cp_value = float(priority.max())

    # Walk one critical path (priority stays ≈ cp_value along it).
    tol = 1e-9 * max(cp_value, 1.0)
    entry = max(
        (v for v in graph.entry_tasks()),
        key=lambda v: priority[v],
    )
    cp_tasks = [int(entry)]
    v = int(entry)
    while graph.successors(v):
        candidates = [s for s in graph.successors(v) if priority[s] >= cp_value - tol]
        if not candidates:
            break
        v = int(max(candidates, key=lambda s: priority[s]))
        cp_tasks.append(v)
    cp_set = set(cp_tasks)
    cp_proc = int(np.argmin(workload.comp[cp_tasks].sum(axis=0)))

    import heapq

    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    heap = [(-priority[v], v) for v in range(n) if remaining_preds[v] == 0]
    heapq.heapify(heap)
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = [Timeline() for _ in range(m)]

    def est_on(task: int, p: int) -> float:
        ready = 0.0
        for u in graph.predecessors(task):
            comm = 0.0
            if int(proc[u]) != p:
                comm = workload.platform.comm_time(graph.volume(u, task), int(proc[u]), p)
            ready = max(ready, finish[u] + comm)
        return ready

    while heap:
        _, task = heapq.heappop(heap)
        if task in cp_set:
            p = cp_proc
            duration = float(workload.comp[task, p])
            start = timelines[p].earliest_start(est_on(task, p), duration, True)
        else:
            p, start, best_eft = -1, 0.0, np.inf
            for q in range(m):
                duration_q = float(workload.comp[task, q])
                s = timelines[q].earliest_start(est_on(task, q), duration_q, True)
                if s + duration_q < best_eft - 1e-12:
                    p, start, best_eft = q, s, s + duration_q
            duration = float(workload.comp[task, p])
        timelines[p].insert(task, start, duration)
        proc[task] = p
        finish[task] = start + duration
        for s_ in graph.successors(task):
            remaining_preds[s_] -= 1
            if remaining_preds[s_] == 0:
                heapq.heappush(heap, (-priority[s_], s_))

    orders = [tl.order() for tl in timelines]
    return Schedule.from_proc_orders(workload, proc, orders, label=label)
