"""CPOP — Critical-Path-on-a-Processor (Topcuoglu, Hariri & Wu).

Extension baseline (the paper cites CPOP in its introduction but does not
evaluate it; we include it for completeness).  CPOP prioritizes tasks by
``rank_u + rank_d`` (upward + downward rank with mean costs), pins every
critical-path task onto the single processor minimizing the total
critical-path computation time, and schedules the rest by earliest finish
time with insertion.

Ranks and per-task EFT queries run on the vectorized scheduler core
(:mod:`repro.schedule._kernel`), bit-identical to the historical loops.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.platform.workload import Workload
from repro.schedule import _kernel
from repro.schedule.heft import upward_ranks
from repro.schedule.schedule import Schedule

__all__ = ["cpop", "downward_ranks"]


def downward_ranks(workload: Workload) -> np.ndarray:
    """Downward rank: longest mean-cost path from an entry, excluding self."""
    return _kernel.downward_ranks(workload)


def cpop(workload: Workload, label: str = "CPOP") -> Schedule:
    """Schedule ``workload`` with CPOP."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    ru = upward_ranks(workload)
    rd = downward_ranks(workload)
    priority = ru + rd
    cp_value = float(priority.max())

    # Walk one critical path (priority stays ≈ cp_value along it).
    tol = 1e-9 * max(cp_value, 1.0)
    entry = max(
        (v for v in graph.entry_tasks()),
        key=lambda v: priority[v],
    )
    cp_tasks = [int(entry)]
    v = int(entry)
    while graph.successors(v):
        candidates = [s for s in graph.successors(v) if priority[s] >= cp_value - tol]
        if not candidates:
            break
        v = int(max(candidates, key=lambda s: priority[s]))
        cp_tasks.append(v)
    cp_set = set(cp_tasks)
    cp_proc = int(np.argmin(workload.comp[cp_tasks].sum(axis=0)))

    csr = graph.csr()
    lat, tau = workload.platform.latency, workload.platform.tau
    remaining_preds = np.diff(csr.pred_ptr).astype(int)
    heap = [(-priority[v], v) for v in range(n) if remaining_preds[v] == 0]
    heapq.heapify(heap)
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = _kernel.Timelines(m)

    while heap:
        _, task = heapq.heappop(heap)
        lo, hi = csr.pred_ptr[task], csr.pred_ptr[task + 1]
        ready = _kernel.ready_times(
            finish, proc, csr.pred_ids[lo:hi], csr.pred_vol[lo:hi], lat, tau
        )
        dur = workload.comp[task].astype(float)
        starts = timelines.earliest_start(ready, dur, True)
        if task in cp_set:
            p = cp_proc
            start = float(starts[p])
        else:
            eft = starts + dur
            p, start, best_eft = -1, 0.0, np.inf
            for q in range(m):
                if eft[q] < best_eft - 1e-12:
                    p, start, best_eft = q, float(starts[q]), float(eft[q])
        duration = float(workload.comp[task, p])
        timelines.insert(p, task, start, duration)
        proc[task] = p
        finish[task] = start + duration
        for s_ in graph.successors(task):
            remaining_preds[s_] -= 1
            if remaining_preds[s_] == 0:
                heapq.heappush(heap, (-priority[s_], s_))

    return Schedule.from_proc_orders(workload, proc, timelines.orders(), label=label)
