"""Hyb.BMCT — the hybrid heuristic of Sakellariou & Zhao (HCW 2004).

Three phases:

1. **Rank** all tasks by decreasing upward rank (mean costs), like HEFT.
2. **Group** the ranked list into consecutive *independent groups*: scanning
   in rank order, a task opens a new group whenever it depends on a task of
   the current group.  Tasks inside a group are mutually independent.
3. **Schedule each group with BMCT** (Balanced Minimum Completion Time):
   first map every task of the group to its fastest machine, then
   iteratively move tasks away from the machine that finishes last, as long
   as the group completion time strictly improves.

Because groups are processed in rank order and tasks within a group are
independent, predecessor finish times are fixed when a group is optimized,
which is what makes the balancing step cheap.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule import _kernel
from repro.schedule.heft import upward_ranks
from repro.schedule.schedule import Schedule

__all__ = ["bmct"]

#: Safety bound on balancing iterations per group (the makespan strictly
#: decreases at each accepted move, so this is never hit in practice).
_MAX_BALANCE_ITERATIONS = 10_000


def bmct(workload: Workload, label: str = "Hyb.BMCT") -> Schedule:
    """Schedule ``workload`` with the hybrid BMCT heuristic."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    ranks = upward_ranks(workload)
    order = sorted(range(n), key=lambda t: (-ranks[t], t))

    # Phase 2: consecutive independent groups.
    groups: list[list[int]] = []
    current: list[int] = []
    current_set: set[int] = set()
    for t in order:
        if any(u in current_set for u in graph.predecessors(t)):
            groups.append(current)
            current, current_set = [], set()
        current.append(t)
        current_set.add(t)
    if current:
        groups.append(current)

    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    proc_orders: list[list[int]] = [[] for _ in range(m)]

    csr = graph.csr()
    lat, tau = workload.platform.latency, workload.platform.tau
    for group in groups:
        # Data-ready times of the whole group on every machine, one
        # vectorized (preds, m) block per task (kernel EFT primitive).
        est = np.zeros((len(group), m))
        for gi, t in enumerate(group):
            lo, hi = csr.pred_ptr[t], csr.pred_ptr[t + 1]
            est[gi] = _kernel.ready_times(
                finish, proc, csr.pred_ids[lo:hi], csr.pred_vol[lo:hi], lat, tau
            )

        # Initial BMCT assignment: fastest machine per task.
        assign = np.array([int(np.argmin(workload.comp[t])) for t in group])

        def evaluate(assign_vec: np.ndarray):
            """Simulate the group's execution; return (max finish, task finishes, orders)."""
            task_finish = np.zeros(len(group))
            orders: list[list[int]] = [[] for _ in range(m)]
            machine_finish = avail.copy()
            for p in range(m):
                members = [gi for gi in range(len(group)) if assign_vec[gi] == p]
                # Within a machine, run in EST order (rank as tie-break,
                # mirroring the ranked list order).
                members.sort(key=lambda gi: (est[gi, p], -ranks[group[gi]]))
                t_free = machine_finish[p]
                for gi in members:
                    start = max(t_free, est[gi, p])
                    t_free = start + workload.comp[group[gi], p]
                    task_finish[gi] = t_free
                    orders[p].append(gi)
                machine_finish[p] = t_free
            return float(machine_finish.max()), task_finish, orders, machine_finish

        best_makespan, task_finish, orders, machine_finish = evaluate(assign)
        for _ in range(_MAX_BALANCE_ITERATIONS):
            worst = int(np.argmax(machine_finish))
            movers = [gi for gi in range(len(group)) if assign[gi] == worst]
            improved = False
            best_move: tuple[float, int, int] | None = None
            for gi in movers:
                for p in range(m):
                    if p == worst:
                        continue
                    trial = assign.copy()
                    trial[gi] = p
                    ms, *_ = evaluate(trial)
                    if ms < best_makespan - 1e-12 and (
                        best_move is None or ms < best_move[0]
                    ):
                        best_move = (ms, gi, p)
            if best_move is not None:
                _, gi, p = best_move
                assign[gi] = p
                best_makespan, task_finish, orders, machine_finish = evaluate(assign)
                improved = True
            if not improved:
                break

        # Commit the group.
        for p in range(m):
            for gi in orders[p]:
                t = group[gi]
                proc[t] = p
                finish[t] = task_finish[gi]
                proc_orders[p].append(t)
        avail = machine_finish

    return Schedule.from_proc_orders(workload, proc, proc_orders, label=label)
