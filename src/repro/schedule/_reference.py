"""Frozen pre-kernel list-scheduler implementations (bit-identity oracles).

Verbatim copies of the heuristics as they were before the vectorized
scheduler core (:mod:`repro.schedule._kernel`) landed: per-task Python loops
over predecessors, per-processor loops for EFT evaluation, and the legacy
:class:`~repro.schedule._timeline.Timeline` slot lists.  Kept for

* **equivalence tests** — every port must produce the *same* schedule
  (identical assignment, orders, start/finish times) on every workload;
* **benchmark baselines** — ``benchmarks/bench_kernel.py`` reports the
  kernel speedups against these loops in ``BENCH_core.json``.

Nothing in the library calls this module on any hot path.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.platform.workload import Workload
from repro.schedule._timeline import Timeline
from repro.schedule.schedule import Schedule

__all__ = [
    "upward_ranks_reference",
    "downward_ranks_reference",
    "static_levels_reference",
    "bil_levels_reference",
    "heft_reference",
    "cpop_reference",
    "bmct_reference",
    "dls_reference",
    "bil_reference",
]

_MAX_BALANCE_ITERATIONS = 10_000


def upward_ranks_reference(
    workload: Workload, durations: np.ndarray | None = None
) -> np.ndarray:
    """Historical per-task upward-rank loop."""
    graph = workload.graph
    w = workload.mean_durations() if durations is None else np.asarray(durations)
    ranks = np.zeros(graph.n_tasks)
    for v in graph.topological_order()[::-1]:
        v = int(v)
        tail = 0.0
        for s in graph.successors(v):
            c = workload.mean_comm_time(v, s)
            tail = max(tail, c + ranks[s])
        ranks[v] = w[v] + tail
    return ranks


def downward_ranks_reference(workload: Workload) -> np.ndarray:
    """Historical per-task downward-rank loop."""
    graph = workload.graph
    w = workload.mean_durations()
    ranks = np.zeros(graph.n_tasks)
    for v in graph.topological_order():
        v = int(v)
        for u in graph.predecessors(v):
            c = workload.mean_comm_time(u, v)
            ranks[v] = max(ranks[v], ranks[u] + w[u] + c)
    return ranks


def static_levels_reference(workload: Workload) -> np.ndarray:
    """Historical per-task static-level loop."""
    graph = workload.graph
    w = workload.mean_durations()
    sl = np.zeros(graph.n_tasks)
    for v in graph.topological_order()[::-1]:
        v = int(v)
        tail = max((sl[s] for s in graph.successors(v)), default=0.0)
        sl[v] = w[v] + tail
    return sl


def bil_levels_reference(workload: Workload) -> np.ndarray:
    """Historical per-(task, proc, proc) BIL level loops."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    levels = np.zeros((n, m))
    for v in graph.topological_order()[::-1]:
        v = int(v)
        succs = graph.successors(v)
        for j in range(m):
            tail = 0.0
            for k in succs:
                best = np.inf
                for jp in range(m):
                    comm = 0.0
                    if jp != j:
                        comm = workload.platform.comm_time(
                            graph.volume(v, k), j, jp
                        )
                    cand = levels[k, jp] + comm
                    if cand < best:
                        best = cand
                tail = max(tail, best)
            levels[v, j] = workload.comp[v, j] + tail
    return levels


def heft_reference(
    workload: Workload,
    insertion: bool = True,
    label: str = "HEFT",
    durations: np.ndarray | None = None,
    comp: np.ndarray | None = None,
) -> Schedule:
    """Historical HEFT: per-processor EFT loops over legacy timelines."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    costs = workload.comp if comp is None else np.asarray(comp)
    ranks = upward_ranks_reference(workload, durations)
    order = sorted(range(n), key=lambda t: (-ranks[t], t))

    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = [Timeline() for _ in range(m)]

    for task in order:
        best_p, best_start, best_finish = -1, 0.0, np.inf
        for p in range(m):
            ready = 0.0
            for u in graph.predecessors(task):
                comm = 0.0
                if int(proc[u]) != p:
                    comm = workload.platform.comm_time(
                        graph.volume(u, task), int(proc[u]), p
                    )
                arrival = finish[u] + comm
                if arrival > ready:
                    ready = arrival
            duration = float(costs[task, p])
            start = timelines[p].earliest_start(ready, duration, insertion)
            eft = start + duration
            if eft < best_finish - 1e-12:
                best_p, best_start, best_finish = p, start, eft
        duration = float(costs[task, best_p])
        timelines[best_p].insert(task, best_start, duration)
        proc[task] = best_p
        finish[task] = best_finish

    orders = [tl.order() for tl in timelines]
    return Schedule.from_proc_orders(workload, proc, orders, label=label)


def cpop_reference(workload: Workload, label: str = "CPOP") -> Schedule:
    """Historical CPOP with per-processor loops."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    ru = upward_ranks_reference(workload)
    rd = downward_ranks_reference(workload)
    priority = ru + rd
    cp_value = float(priority.max())

    tol = 1e-9 * max(cp_value, 1.0)
    entry = max(
        (v for v in graph.entry_tasks()),
        key=lambda v: priority[v],
    )
    cp_tasks = [int(entry)]
    v = int(entry)
    while graph.successors(v):
        candidates = [s for s in graph.successors(v) if priority[s] >= cp_value - tol]
        if not candidates:
            break
        v = int(max(candidates, key=lambda s: priority[s]))
        cp_tasks.append(v)
    cp_set = set(cp_tasks)
    cp_proc = int(np.argmin(workload.comp[cp_tasks].sum(axis=0)))

    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    heap = [(-priority[v], v) for v in range(n) if remaining_preds[v] == 0]
    heapq.heapify(heap)
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = [Timeline() for _ in range(m)]

    def est_on(task: int, p: int) -> float:
        ready = 0.0
        for u in graph.predecessors(task):
            comm = 0.0
            if int(proc[u]) != p:
                comm = workload.platform.comm_time(graph.volume(u, task), int(proc[u]), p)
            ready = max(ready, finish[u] + comm)
        return ready

    while heap:
        _, task = heapq.heappop(heap)
        if task in cp_set:
            p = cp_proc
            duration = float(workload.comp[task, p])
            start = timelines[p].earliest_start(est_on(task, p), duration, True)
        else:
            p, start, best_eft = -1, 0.0, np.inf
            for q in range(m):
                duration_q = float(workload.comp[task, q])
                s = timelines[q].earliest_start(est_on(task, q), duration_q, True)
                if s + duration_q < best_eft - 1e-12:
                    p, start, best_eft = q, s, s + duration_q
            duration = float(workload.comp[task, p])
        timelines[p].insert(task, start, duration)
        proc[task] = p
        finish[task] = start + duration
        for s_ in graph.successors(task):
            remaining_preds[s_] -= 1
            if remaining_preds[s_] == 0:
                heapq.heappush(heap, (-priority[s_], s_))

    orders = [tl.order() for tl in timelines]
    return Schedule.from_proc_orders(workload, proc, orders, label=label)


def bmct_reference(workload: Workload, label: str = "Hyb.BMCT") -> Schedule:
    """Historical Hyb.BMCT with per-predecessor EST loops."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    ranks = upward_ranks_reference(workload)
    order = sorted(range(n), key=lambda t: (-ranks[t], t))

    groups: list[list[int]] = []
    current: list[int] = []
    current_set: set[int] = set()
    for t in order:
        if any(u in current_set for u in graph.predecessors(t)):
            groups.append(current)
            current, current_set = [], set()
        current.append(t)
        current_set.add(t)
    if current:
        groups.append(current)

    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    proc_orders: list[list[int]] = [[] for _ in range(m)]

    for group in groups:
        est = np.zeros((len(group), m))
        for gi, t in enumerate(group):
            for u in graph.predecessors(t):
                pu = int(proc[u])
                for j in range(m):
                    comm = 0.0
                    if pu != j:
                        comm = workload.platform.comm_time(graph.volume(u, t), pu, j)
                    est[gi, j] = max(est[gi, j], finish[u] + comm)

        assign = np.array([int(np.argmin(workload.comp[t])) for t in group])

        def evaluate(assign_vec: np.ndarray):
            task_finish = np.zeros(len(group))
            orders: list[list[int]] = [[] for _ in range(m)]
            machine_finish = avail.copy()
            for p in range(m):
                members = [gi for gi in range(len(group)) if assign_vec[gi] == p]
                members.sort(key=lambda gi: (est[gi, p], -ranks[group[gi]]))
                t_free = machine_finish[p]
                for gi in members:
                    start = max(t_free, est[gi, p])
                    t_free = start + workload.comp[group[gi], p]
                    task_finish[gi] = t_free
                    orders[p].append(gi)
                machine_finish[p] = t_free
            return float(machine_finish.max()), task_finish, orders, machine_finish

        best_makespan, task_finish, orders, machine_finish = evaluate(assign)
        for _ in range(_MAX_BALANCE_ITERATIONS):
            worst = int(np.argmax(machine_finish))
            movers = [gi for gi in range(len(group)) if assign[gi] == worst]
            improved = False
            best_move: tuple[float, int, int] | None = None
            for gi in movers:
                for p in range(m):
                    if p == worst:
                        continue
                    trial = assign.copy()
                    trial[gi] = p
                    ms, *_ = evaluate(trial)
                    if ms < best_makespan - 1e-12 and (
                        best_move is None or ms < best_move[0]
                    ):
                        best_move = (ms, gi, p)
            if best_move is not None:
                _, gi, p = best_move
                assign[gi] = p
                best_makespan, task_finish, orders, machine_finish = evaluate(assign)
                improved = True
            if not improved:
                break

        for p in range(m):
            for gi in orders[p]:
                t = group[gi]
                proc[t] = p
                finish[t] = task_finish[gi]
                proc_orders[p].append(t)
        avail = machine_finish

    return Schedule.from_proc_orders(workload, proc, proc_orders, label=label)


def dls_reference(workload: Workload, label: str = "DLS") -> Schedule:
    """Historical DLS with per-(task, proc, pred) loops."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    sl = static_levels_reference(workload)
    mean_costs = workload.mean_durations()

    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    ready = {v for v in range(n) if remaining_preds[v] == 0}
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    while ready:
        best = None
        for t in sorted(ready):
            delta = mean_costs[t] - workload.comp[t]
            for p in range(m):
                data_ready = 0.0
                for u in graph.predecessors(t):
                    comm = 0.0
                    if int(proc[u]) != p:
                        comm = workload.platform.comm_time(
                            graph.volume(u, t), int(proc[u]), p
                        )
                    data_ready = max(data_ready, finish[u] + comm)
                est = max(data_ready, avail[p])
                dl = sl[t] - est + delta[p]
                key = (dl, -est, -t, -p)
                if best is None or key > best[0]:
                    best = (key, t, p, est)
        (_, t, p, est) = best  # type: ignore[misc]
        proc[t] = p
        finish[t] = est + workload.comp[t, p]
        avail[p] = finish[t]
        sequence.append((t, p))
        ready.remove(t)
        for s in graph.successors(t):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                ready.add(s)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)


def bil_reference(workload: Workload, label: str = "BIL") -> Schedule:
    """Historical BIL with per-(task, pred, proc) loops."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    levels = bil_levels_reference(workload)

    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    ready = [v for v in range(n) if remaining_preds[v] == 0]
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    while ready:
        k = min(len(ready), m)
        best_task, best_key = -1, None
        bims: dict[int, np.ndarray] = {}
        for t in ready:
            est = np.zeros(m)
            for u in graph.predecessors(t):
                pu = int(proc[u])
                for j in range(m):
                    comm = 0.0
                    if pu != j:
                        comm = workload.platform.comm_time(graph.volume(u, t), pu, j)
                    est[j] = max(est[j], finish[u] + comm)
            bim = np.maximum(est, avail) + levels[t]
            bims[t] = bim
            s = np.sort(bim)
            key = (s[k - 1], float(levels[t].max() - levels[t].min()), -t)
            if best_key is None or key > best_key:
                best_task, best_key = t, key
        bim = bims[best_task]
        p = int(np.argmin(bim))
        proc[best_task] = p
        start = max(avail[p], float(bim[p] - levels[best_task, p]))
        finish[best_task] = start + workload.comp[best_task, p]
        avail[p] = finish[best_task]
        sequence.append((best_task, p))
        ready.remove(best_task)
        for s_ in graph.successors(best_task):
            remaining_preds[s_] -= 1
            if remaining_preds[s_] == 0:
                ready.append(s_)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)
