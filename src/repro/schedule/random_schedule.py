"""The paper's uniform random eager scheduler (§V).

Random schedules are created by repeating three phases until all tasks are
placed:

1. choose uniformly at random a task among the *ready* ones (all
   predecessors scheduled);
2. assign it to a uniformly chosen processor;
3. append it there (eager start) and update the ready list.

These schedules populate the metric panels: with thousands of them the
scatter of (metric, metric) pairs reveals the correlations the paper
studies.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.platform.workload import Workload
from repro.schedule.schedule import Schedule
from repro.util.rng import as_generator

__all__ = ["random_schedule", "random_schedules"]


def random_schedule(
    workload: Workload,
    rng: int | None | np.random.Generator = None,
    label: str = "random",
) -> Schedule:
    """Draw one uniform random eager schedule."""
    gen = as_generator(rng)
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    remaining_preds = np.zeros(n, dtype=int)
    for v in range(n):
        remaining_preds[v] = len(graph.predecessors(v))
    ready = [v for v in range(n) if remaining_preds[v] == 0]
    sequence: list[tuple[int, int]] = []
    while ready:
        idx = int(gen.integers(len(ready)))
        # O(1) removal: swap with the last element.
        ready[idx], ready[-1] = ready[-1], ready[idx]
        task = ready.pop()
        p = int(gen.integers(m))
        sequence.append((task, p))
        for s in graph.successors(task):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                ready.append(s)
    if len(sequence) != n:
        raise ValueError("graph has a cycle (ready list exhausted early)")
    return Schedule.from_assignment_sequence(workload, sequence, label=label)


def random_schedules(
    workload: Workload,
    count: int,
    rng: int | None | np.random.Generator = None,
) -> Iterator[Schedule]:
    """Yield ``count`` independent random schedules."""
    gen = as_generator(rng)
    for i in range(count):
        yield random_schedule(workload, gen, label=f"random_{i}")
