"""Vectorized scheduler core shared by the list heuristics.

The historical heuristics walked Python adjacency tuples — one predecessor
and one processor at a time — and kept per-processor busy intervals in
Python slot lists.  This module replaces those inner loops:

* **rank computations** (:func:`upward_ranks`, :func:`downward_ranks`,
  :func:`static_levels`, :func:`bil_levels`) run level-synchronously over
  the graph's flat CSR arrays (:meth:`~repro.dag.graph.TaskGraph.csr`);
* **data-ready times** (:func:`ready_times`) evaluate one task's earliest
  start on *all* ``m`` processors with one ``(k, m)`` block;
* **timelines** (:class:`Timelines`) keep all ``m`` processors' busy slots
  in padded, sorted arrays and answer the insertion-policy earliest-start
  query for every processor at once.

Everything is bit-identical to the historical loops: maxima/minima over
floats are exact in any evaluation order, and every sum/product keeps the
historical association (verified against the frozen implementations in
:mod:`repro.schedule._reference` by the equivalence suite).
"""

from __future__ import annotations

import numpy as np

from repro.dag._csr import concat_ranges
from repro.platform.workload import Workload

__all__ = [
    "upward_ranks",
    "downward_ranks",
    "static_levels",
    "bil_levels",
    "ready_times",
    "Timelines",
]


# ---------------------------------------------------------------------- #
# rank computations (level-synchronous CSR passes)
# ---------------------------------------------------------------------- #


def _succ_level_edges(csr, tasks):
    """Outgoing edge indices of ``tasks`` plus their owner positions."""
    starts, ends = csr.succ_ptr[tasks], csr.succ_ptr[tasks + 1]
    edges = concat_ranges(starts, ends)
    owners = np.repeat(np.arange(len(tasks), dtype=np.intp), ends - starts)
    return edges, owners


def _pred_level_edges(csr, tasks):
    """Incoming edge indices of ``tasks`` plus their owner positions."""
    starts, ends = csr.pred_ptr[tasks], csr.pred_ptr[tasks + 1]
    edges = concat_ranges(starts, ends)
    owners = np.repeat(np.arange(len(tasks), dtype=np.intp), ends - starts)
    return edges, owners


def upward_ranks(
    workload: Workload, durations: np.ndarray | None = None
) -> np.ndarray:
    """Upward rank of every task (machine-averaged costs by default).

    ``rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))``, evaluated
    as a reverse level sweep.  ``durations`` overrides the per-task cost
    vector (σ-HEFT hook).
    """
    csr = workload.graph.csr()
    w = workload.mean_durations() if durations is None else np.asarray(durations)
    cbar = workload.platform.mean_latency() + csr.succ_vol * workload.platform.mean_tau()
    ranks = np.zeros(workload.n_tasks)
    topo, lp = csr.topo, csr.level_ptr
    for l in range(csr.n_levels - 1, -1, -1):
        tasks = topo[lp[l] : lp[l + 1]]
        edges, owners = _succ_level_edges(csr, tasks)
        tails = np.zeros(len(tasks))
        if len(edges):
            np.maximum.at(tails, owners, cbar[edges] + ranks[csr.succ_ids[edges]])
        ranks[tasks] = w[tasks] + tails
    return ranks


def downward_ranks(workload: Workload) -> np.ndarray:
    """Downward rank: longest mean-cost path from an entry, excluding self."""
    csr = workload.graph.csr()
    w = workload.mean_durations()
    cbar = workload.platform.mean_latency() + csr.pred_vol * workload.platform.mean_tau()
    ranks = np.zeros(workload.n_tasks)
    topo, lp = csr.topo, csr.level_ptr
    for l in range(1, csr.n_levels):
        tasks = topo[lp[l] : lp[l + 1]]
        edges, owners = _pred_level_edges(csr, tasks)
        tails = np.zeros(len(tasks))
        if len(edges):
            preds = csr.pred_ids[edges]
            np.maximum.at(tails, owners, (ranks[preds] + w[preds]) + cbar[edges])
        ranks[tasks] = tails
    return ranks


def static_levels(workload: Workload) -> np.ndarray:
    """Static level SL(t): mean-cost longest path to an exit, no comm."""
    csr = workload.graph.csr()
    w = workload.mean_durations()
    sl = np.zeros(workload.n_tasks)
    topo, lp = csr.topo, csr.level_ptr
    for l in range(csr.n_levels - 1, -1, -1):
        tasks = topo[lp[l] : lp[l + 1]]
        edges, owners = _succ_level_edges(csr, tasks)
        tails = np.zeros(len(tasks))
        if len(edges):
            np.maximum.at(tails, owners, sl[csr.succ_ids[edges]])
        sl[tasks] = w[tasks] + tails
    return sl


def bil_levels(workload: Workload) -> np.ndarray:
    """``(n, m)`` matrix of Best Imaginary Levels (Oh & Ha).

    One reverse level sweep; per level the per-successor
    ``min_{j'} (BIL(k, j') + c·[j ≠ j'])`` is evaluated as an
    ``(edges, m, m)`` block followed by an unbuffered segment maximum.
    """
    csr = workload.graph.csr()
    n, m = workload.n_tasks, workload.m
    lat, tau = workload.platform.latency, workload.platform.tau
    levels = np.zeros((n, m))
    topo, lp = csr.topo, csr.level_ptr
    for l in range(csr.n_levels - 1, -1, -1):
        tasks = topo[lp[l] : lp[l + 1]]
        edges, owners = _succ_level_edges(csr, tasks)
        tails = np.zeros((len(tasks), m))
        if len(edges):
            # comm[e, j, jp] = L[j, jp] + vol_e · τ[j, jp]  (0 on diagonal)
            comm = lat[None, :, :] + csr.succ_vol[edges, None, None] * tau[None, :, :]
            cand = levels[csr.succ_ids[edges], None, :] + comm
            np.maximum.at(tails, owners, cand.min(axis=2))
        levels[tasks] = workload.comp[tasks] + tails
    return levels


# ---------------------------------------------------------------------- #
# per-task EFT evaluation primitives
# ---------------------------------------------------------------------- #


def ready_times(
    finish: np.ndarray,
    proc: np.ndarray,
    preds: np.ndarray,
    vols: np.ndarray,
    lat: np.ndarray,
    tau: np.ndarray,
) -> np.ndarray:
    """Earliest data-ready time of one task on every processor.

    ``preds``/``vols`` are the task's predecessor ids and edge volumes;
    returns the ``(m,)`` vector ``max_u (finish[u] + L[p_u, ·] + vol·τ[p_u, ·])``
    (0.0 with no predecessors).  The diagonal of ``L``/``τ`` is zero, so
    same-processor arrivals cost exactly ``finish[u] + 0.0`` like the
    historical branch.
    """
    if len(preds) == 0:
        return np.zeros(lat.shape[0])
    pu = proc[preds]
    comm = lat[pu] + vols[:, None] * tau[pu]
    return np.max(finish[preds][:, None] + comm, axis=0)


class Timelines:
    """All ``m`` processors' busy slots, in padded sorted arrays.

    Supports the two queries of the list heuristics — append-style
    earliest start (``max(ready, available)``) and insertion-policy
    earliest start (first sufficiently large idle gap) — for **every
    processor at once**, plus single-slot insertion.  The slot bookkeeping
    matches the legacy :class:`~repro.schedule._timeline.Timeline`
    semantics: same gap predicate, same tolerances, start-keyed insertion
    position (equal starts can only arise for zero-duration tasks; see the
    legacy class for the invariant).
    """

    def __init__(self, m: int, capacity: int = 8):
        self.m = m
        self._cap = capacity
        # Column layout per processor row: slots 0..count-1, then +inf
        # padding.  ``_prev[p, i]`` is the finish of slot i−1 (0.0 for
        # i = 0), maintained so the insertion query is pure arithmetic.
        self._starts = np.full((m, capacity + 1), np.inf)
        self._finishes = np.full((m, capacity + 1), np.inf)
        self._prev = np.zeros((m, capacity + 1))
        self._counts = np.zeros(m, dtype=np.intp)
        self._avail = np.zeros(m)
        self._rows = np.arange(m)
        self._tasks: list[list[int]] = [[] for _ in range(m)]

    @property
    def available(self) -> np.ndarray:
        """Finish time of each processor's last slot (0.0 when empty)."""
        return self._avail

    def earliest_start(
        self, ready: np.ndarray, duration: np.ndarray, insertion: bool
    ) -> np.ndarray:
        """Earliest start ≥ ``ready[p]`` of a ``duration[p]`` task, per p.

        With ``insertion`` the first sufficiently large idle gap of each
        processor is used (legacy predicate ``candidate + duration ≤
        slot_start + 1e-12``), otherwise the task appends after the last
        slot.
        """
        if not insertion:
            return np.maximum(ready, self._avail)
        cand = np.maximum(ready[:, None], self._prev)
        fits = cand + duration[:, None] <= self._starts + 1e-12
        # Padding columns have start = +inf, so each row fits at its
        # append sentinel (column ``count``) at the latest.
        first = np.argmax(fits, axis=1)
        return cand[self._rows, first]

    def insert(self, p: int, task: int, start: float, duration: float) -> None:
        """Place ``task`` on processor ``p`` (must not overlap)."""
        count = int(self._counts[p])
        if count + 1 >= self._starts.shape[1]:
            self._grow()
        finish = start + duration
        row_s = self._starts[p]
        row_f = self._finishes[p]
        idx = int(np.searchsorted(row_s[:count], start, side="right"))
        if idx > 0 and row_f[idx - 1] > start + 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        if idx < count and row_s[idx] < finish - 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        row_s[idx + 1 : count + 1] = row_s[idx:count].copy()
        row_f[idx + 1 : count + 1] = row_f[idx:count].copy()
        row_s[idx] = start
        row_f[idx] = finish
        self._tasks[p].insert(idx, task)
        self._counts[p] = count + 1
        self._prev[p, 1 : count + 2] = row_f[: count + 1]
        self._avail[p] = row_f[count]

    def _grow(self) -> None:
        old_cap = self._starts.shape[1]
        cap = old_cap * 2
        for name in ("_starts", "_finishes"):
            new = np.full((self.m, cap), np.inf)
            new[:, :old_cap] = getattr(self, name)
            setattr(self, name, new)
        new_prev = np.zeros((self.m, cap))
        new_prev[:, :old_cap] = self._prev
        self._prev = new_prev

    def orders(self) -> list[list[int]]:
        """Per-processor task lists in execution (start-time) order."""
        return [list(tasks) for tasks in self._tasks]
