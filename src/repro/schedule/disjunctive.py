"""Disjunctive graphs: precedence + same-processor ordering.

Given a schedule, the makespan of any realization is the longest path in the
*disjunctive graph*: the application DAG augmented with a zero-volume edge
between consecutive tasks of each processor's execution order (Shi et al.;
paper §II).  Every analysis engine — deterministic replay, grid-RV
propagation, Gaussian propagation and vectorized Monte-Carlo — walks this
structure in topological order, so it is precomputed once per schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dag.graph import TaskGraph

__all__ = ["DisjunctiveGraph"]


@dataclass(frozen=True)
class DisjunctiveGraph:
    """Flattened predecessor structure of a scheduled DAG.

    Attributes
    ----------
    topo:
        Topological order of the combined graph (array of task ids).
    preds:
        ``preds[v]`` is a tuple of ``(u, volume)`` pairs: ``volume`` is the
        communication volume for application edges and ``None`` for
        same-processor chaining edges (no data transfer).
    """

    topo: np.ndarray
    preds: tuple[tuple[tuple[int, float | None], ...], ...]

    @classmethod
    def build(
        cls,
        graph: TaskGraph,
        orders: Sequence[Sequence[int]],
    ) -> "DisjunctiveGraph":
        """Combine ``graph`` with per-processor ``orders``.

        Raises
        ------
        ValueError
            If the combined graph is cyclic (the processor orders contradict
            the precedence constraints) or the orders are not a partition of
            the tasks.
        """
        n = graph.n_tasks
        seen = np.zeros(n, dtype=bool)
        for order in orders:
            for t in order:
                if seen[t]:
                    raise ValueError(f"task {t} appears on several processors")
                seen[t] = True
        if not seen.all():
            missing = np.flatnonzero(~seen)
            raise ValueError(f"tasks not scheduled: {missing.tolist()}")

        preds: list[list[tuple[int, float | None]]] = [[] for _ in range(n)]
        succs: list[list[int]] = [[] for _ in range(n)]
        indeg = np.zeros(n, dtype=int)

        for u, v, volume in graph.edges():
            preds[v].append((u, volume))
            succs[u].append(v)
            indeg[v] += 1
        for order in orders:
            for a, b in zip(order, order[1:]):
                if not graph.has_edge(a, b):
                    preds[b].append((a, None))
                    succs[a].append(b)
                    indeg[b] += 1

        stack = [v for v in range(n) if indeg[v] == 0]
        topo: list[int] = []
        while stack:
            v = stack.pop()
            topo.append(v)
            for s in succs[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if len(topo) != n:
            raise ValueError(
                "processor orders contradict precedence constraints (cycle)"
            )
        return cls(
            topo=np.asarray(topo, dtype=np.intp),
            preds=tuple(tuple(p) for p in preds),
        )
