"""Disjunctive graphs: precedence + same-processor ordering, as flat CSR.

Given a schedule, the makespan of any realization is the longest path in the
*disjunctive graph*: the application DAG augmented with a zero-volume edge
between consecutive tasks of each processor's execution order (Shi et al.;
paper §II).  Every analysis engine — deterministic replay, grid-RV
propagation, Gaussian propagation and vectorized Monte-Carlo — walks this
structure, so it is precomputed once per schedule.

The structure is stored as **flat CSR arrays** plus a precomputed
**level decomposition** rather than nested per-task tuples:

* ``topo`` is a *level-major* topological order and ``level_ptr`` partitions
  it into levels (``level(v) = 1 + max(level(preds))``, 0 for entry tasks),
  so every edge crosses strictly forward in level;
* ``edge_ptr`` is a CSR index over **topo positions**: the incoming edges of
  task ``topo[i]`` are ``edge_*[edge_ptr[i]:edge_ptr[i+1]]``.  Per task, the
  application edges come first (in graph insertion order) followed by the
  processor-chaining edge, preserving the historical predecessor order;
* ``edge_src``/``edge_dst``/``edge_volume``/``edge_is_app``/``edge_cross``
  carry the per-edge payload (``edge_cross`` marks application edges whose
  endpoints sit on different processors — the only edges that ever pay a
  communication delay).

Because a level's tasks depend only on earlier levels, the eager
longest-path propagation used by every engine becomes the level-synchronous
:meth:`DisjunctiveGraph.propagate` — a gather, an optional per-edge delay
add and one ``np.maximum.reduceat`` per level — instead of a Python loop
per task and predecessor.  The arithmetic per task is unchanged, so results
are bit-identical to the historical loops (verified by the equivalence
suite in ``tests/schedule/test_kernel_bitidentity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.dag._csr import group_by, level_topology
from repro.dag.graph import TaskGraph

__all__ = ["DisjunctiveGraph"]

#: Realization-block budget of the propagation kernel: blocks are sized to
#: ``_BLOCK_TARGET_ELEMS // n_tasks`` realizations so the task-major finish
#: slab (~1 MB) plus the level gathers stay cache-resident across a level
#: sweep.  Blocking is bit-neutral — every operation is elementwise per
#: realization — so the value only affects speed.
_BLOCK_TARGET_ELEMS = 1 << 17


def _sweep(
    plan: list,
    dur_t: np.ndarray,
    comm: np.ndarray | None,
    start_t: np.ndarray,
    finish_t: np.ndarray,
) -> None:
    """One slot-planned level sweep over task-major ``(n, …)`` views.

    Per level: slot 0 gathers every task's first incoming arrival, each
    further slot folds the ``k``-th arrival of the still-active prefix with
    a running ``np.maximum`` — all plain contiguous ufunc calls.
    """
    for tasks, slots in plan:
        src0, sel0, rows0, _ = slots[0]
        st = finish_t[src0]
        if comm is not None:
            if sel0 is None:
                st += comm[rows0]
            elif len(sel0):
                st[sel0] += comm[rows0]
        for src_k, sel_k, rows_k, n_k in slots[1:]:
            tmp = finish_t[src_k]
            if comm is not None:
                if sel_k is None:
                    tmp += comm[rows_k]
                elif len(sel_k):
                    tmp[sel_k] += comm[rows_k]
            np.maximum(st[:n_k], tmp, out=st[:n_k])
        start_t[tasks] = st
        st += dur_t[tasks]
        finish_t[tasks] = st


@dataclass(frozen=True)
class DisjunctiveGraph:
    """Flattened predecessor structure of a scheduled DAG (CSR + levels).

    Attributes
    ----------
    topo:
        Level-major topological order of the combined graph (task ids).
    level_ptr:
        ``topo[level_ptr[l]:level_ptr[l+1]]`` are the level-``l`` tasks.
    proc:
        Processor of each task (derived from the per-processor orders).
    edge_ptr:
        CSR index over topo positions: incoming edges of ``topo[i]`` are
        ``edge_ptr[i]:edge_ptr[i+1]``.
    edge_src, edge_dst:
        Endpoint task ids of each edge (``edge_dst[e]`` repeats ``topo[i]``).
    edge_volume:
        Application-edge communication volume (0.0 for chaining edges).
    edge_is_app:
        Whether the edge is an application edge (chaining edges are the
        zero-volume same-processor ordering edges).
    edge_cross:
        Application edge whose endpoints are on different processors — the
        only edges that carry a communication delay.
    """

    topo: np.ndarray
    level_ptr: np.ndarray
    proc: np.ndarray
    edge_ptr: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_volume: np.ndarray
    edge_is_app: np.ndarray
    edge_cross: np.ndarray

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: TaskGraph,
        orders: Sequence[Sequence[int]],
    ) -> "DisjunctiveGraph":
        """Combine ``graph`` with per-processor ``orders``.

        Raises
        ------
        ValueError
            If the combined graph is cyclic (the processor orders contradict
            the precedence constraints) or the orders are not a partition of
            the tasks.
        """
        n = graph.n_tasks
        seen = np.zeros(n, dtype=bool)
        proc = np.zeros(n, dtype=np.intp)
        for p, order in enumerate(orders):
            for t in order:
                if seen[t]:
                    raise ValueError(f"task {t} appears on several processors")
                seen[t] = True
                proc[t] = p
        if not seen.all():
            missing = np.flatnonzero(~seen)
            raise ValueError(f"tasks not scheduled: {missing.tolist()}")

        # Collect edges: application edges in graph insertion order, then
        # the chaining edges of the processor orders.
        app_src: list[int] = []
        app_dst: list[int] = []
        app_vol: list[float] = []
        for u, v, volume in graph.edges():
            app_src.append(u)
            app_dst.append(v)
            app_vol.append(volume)
        chain_src: list[int] = []
        chain_dst: list[int] = []
        for order in orders:
            for a, b in zip(order, order[1:]):
                if not graph.has_edge(a, b):
                    chain_src.append(a)
                    chain_dst.append(b)

        n_app, n_chain = len(app_src), len(chain_src)
        src = np.asarray(app_src + chain_src, dtype=np.intp)
        dst = np.asarray(app_dst + chain_dst, dtype=np.intp)
        volume = np.asarray(app_vol + [0.0] * n_chain, dtype=float)
        is_app = np.zeros(n_app + n_chain, dtype=bool)
        is_app[:n_app] = True

        topo, level_ptr = level_topology(
            n, src, dst,
            "processor orders contradict precedence constraints (cycle)",
        )
        pos = np.empty(n, dtype=np.intp)
        pos[topo] = np.arange(n, dtype=np.intp)

        # Group edges by destination topo position; the (app-before-chain,
        # insertion-order) ordering is preserved because application edges
        # were collected first and the grouping sort is stable.
        edge_ptr, perm = group_by(pos[dst], n)
        src, dst, volume, is_app = src[perm], dst[perm], volume[perm], is_app[perm]
        cross = is_app & (proc[src] != proc[dst])

        return cls(
            topo=topo,
            level_ptr=level_ptr,
            proc=proc,
            edge_ptr=edge_ptr,
            edge_src=src,
            edge_dst=dst,
            edge_volume=volume,
            edge_is_app=is_app,
            edge_cross=cross,
        )

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self.topo)

    @property
    def n_edges(self) -> int:
        """Number of edges (application + chaining)."""
        return len(self.edge_src)

    @property
    def n_levels(self) -> int:
        """Number of levels in the decomposition."""
        return len(self.level_ptr) - 1

    @cached_property
    def topo_pos(self) -> np.ndarray:
        """Inverse permutation of :attr:`topo` (task id → topo position)."""
        pos = np.empty(self.n_tasks, dtype=np.intp)
        pos[self.topo] = np.arange(self.n_tasks, dtype=np.intp)
        return pos

    @cached_property
    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Edges grouped by *source* topo position, for reverse passes.

        Returns ``(out_ptr, out_edges)``: the outgoing edges of task
        ``topo[i]`` are ``out_edges[out_ptr[i]:out_ptr[i+1]]`` (indices into
        the ``edge_*`` arrays).
        """
        out_ptr, out_edges = group_by(self.topo_pos[self.edge_src], self.n_tasks)
        return out_ptr, out_edges

    @cached_property
    def preds(self) -> tuple[tuple[tuple[int, float | None], ...], ...]:
        """Nested-tuple predecessor view (compatibility accessor).

        ``preds[v]`` is a tuple of ``(u, volume)`` pairs, ``volume`` being
        ``None`` for chaining edges — the historical representation, derived
        lazily from the CSR arrays for tests and debugging.  Hot paths use
        the flat arrays directly.
        """
        out: list[list[tuple[int, float | None]]] = [[] for _ in range(self.n_tasks)]
        ep = self.edge_ptr
        for i in range(self.n_tasks):
            v = int(self.topo[i])
            for e in range(ep[i], ep[i + 1]):
                vol = float(self.edge_volume[e]) if self.edge_is_app[e] else None
                out[v].append((int(self.edge_src[e]), vol))
        return tuple(tuple(p) for p in out)

    # ------------------------------------------------------------------ #
    # level-synchronous propagation kernel
    # ------------------------------------------------------------------ #

    def propagate(
        self,
        durations: np.ndarray,
        comm: np.ndarray | None = None,
        comm_cols: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eager longest-path start/finish times, level-synchronously.

        Parameters
        ----------
        durations:
            ``(..., n)`` task durations; any leading batch shape (e.g. the
            ``(R, n)`` realization block of the Monte-Carlo engine).
        comm:
            Optional per-edge arrival delays, **edge-major**: either a
            dense ``(E, ...)`` array aligned with the CSR edge order (zeros
            on delay-free edges), or — with ``comm_cols`` — a compact
            ``(C, ...)`` block holding only the edges that actually carry a
            delay (one row per delayed edge, trailing batch axes matching
            ``durations``' leading ones).
        comm_cols:
            ``(E,)`` map from CSR edge to row of ``comm`` (−1 = no delay).
            Edges without a row receive **no** add at all, matching the
            historical ``comm_samples.get()`` semantics bit-for-bit.

        Returns
        -------
        (start, finish):
            Arrays of ``durations``' shape (views of task-major internals —
            transposed, hence possibly non-contiguous): ``start`` is the
            maximum over incoming edges of ``finish[src] (+ delay)`` (0 for
            entry tasks) and ``finish = start + durations``.

        Notes
        -----
        The kernel works task-major — ``(n, R)`` rather than ``(R, n)`` —
        so gathering a level's predecessor finishes copies contiguous rows
        and the per-level segment maximum reduces along the leading axis;
        wide batches are additionally processed in realization blocks
        sized to keep the whole finish/duration working set cache-resident
        across the level sweep.  Both are purely memory-layout choices:
        every operation is elementwise per realization and the per-task
        arithmetic is identical to the historical per-predecessor loop, so
        the values are bit-identical.
        """
        durations = np.asarray(durations, dtype=float)
        dur_t = np.ascontiguousarray(np.moveaxis(durations, -1, 0))
        start_t = np.empty_like(dur_t)
        finish_t = np.empty_like(dur_t)
        lp = self.level_ptr

        entry = self.topo[: lp[1]]
        start_t[entry] = 0.0
        plan = self._sweep_plan(comm_cols if comm is not None else None)

        if dur_t.ndim == 1:
            finish_t[entry] = dur_t[entry]
            _sweep(plan, dur_t, comm, start_t, finish_t)
        else:
            batch = int(np.prod(dur_t.shape[1:]))
            dur2 = dur_t.reshape(self.n_tasks, batch)
            start2 = start_t.reshape(self.n_tasks, batch)
            finish2 = finish_t.reshape(self.n_tasks, batch)
            comm2 = None if comm is None else comm.reshape(len(comm), batch)
            # Block the realization axis so the (n, block) finish slab and
            # the level gathers stay cache-resident across the level sweep.
            block = max(256, _BLOCK_TARGET_ELEMS // max(1, self.n_tasks))
            for r0 in range(0, batch, block):
                r1 = min(r0 + block, batch)
                d = dur2[:, r0:r1]
                f = finish2[:, r0:r1]
                f[entry] = d[entry]
                _sweep(
                    plan,
                    d,
                    None if comm2 is None else comm2[:, r0:r1],
                    start2[:, r0:r1],
                    f,
                )
        return np.moveaxis(start_t, 0, -1), np.moveaxis(finish_t, 0, -1)

    def _sweep_plan(self, comm_cols: np.ndarray | None) -> list:
        """Per-level slot plan for the propagation sweep (cached).

        Within a level the tasks are reordered by descending in-degree, so
        the tasks that still have a ``k``-th predecessor always form a
        prefix: slot ``k`` of the sweep then resolves the ``k``-th incoming
        edge of that prefix with one gather, one optional delay add and one
        running ``np.maximum`` — no ``reduceat`` (whose axis-0 path is an
        order of magnitude slower than a plain strided maximum).  Because
        ``max`` over floats is exact, the slot decomposition is
        bit-identical to folding each task's predecessors in order.

        Each plan entry is ``(tasks, slots)`` with ``slots`` a list of
        ``(src, sel, rows, n_k)``: source task ids of the ``k``-th edge of
        the first ``n_k`` tasks, plus the in-slot positions (``sel``) and
        ``comm`` rows (``rows``) of the edges that carry a delay (``sel``
        is ``None`` for a dense ``comm`` aligned with the CSR edge order).
        """
        key = "_plan_dense" if comm_cols is None else "_plan_cols"
        cached = self.__dict__.get(key)
        if cached is not None and (comm_cols is None or cached[0] is comm_cols):
            return cached[1] if comm_cols is not None else cached
        ep, lp, topo, src = self.edge_ptr, self.level_ptr, self.topo, self.edge_src
        plan = []
        for l in range(1, self.n_levels):
            i0, i1 = int(lp[l]), int(lp[l + 1])
            counts = ep[i0 + 1 : i1 + 1] - ep[i0:i1]
            order = np.argsort(-counts, kind="stable")
            tasks = topo[i0:i1][order]
            starts = ep[i0:i1][order]
            counts = counts[order]
            slots = []
            for k in range(int(counts[0])):
                n_k = int(np.searchsorted(-counts, -k, side="left"))
                eids = starts[:n_k] + k
                if comm_cols is None:
                    sel: np.ndarray | None = None
                    rows: np.ndarray = eids
                else:
                    cols = comm_cols[eids]
                    sel = np.flatnonzero(cols >= 0)
                    rows = cols[sel]
                slots.append((src[eids], sel, rows, n_k))
            plan.append((tasks, slots))
        if comm_cols is None:
            self.__dict__[key] = plan
        else:
            self.__dict__[key] = (comm_cols, plan)
        return plan
