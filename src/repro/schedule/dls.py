"""DLS / GDL — Dynamic Level Scheduling (Sih & Lee, IEEE TPDS 1993).

Cited in the paper's introduction as GDL.  A dynamic list scheduler: at
every step it evaluates all (ready task, processor) pairs and commits the
pair with the highest *dynamic level*

    DL(t, p) = SL(t) − max(data_ready(t, p), avail(p)) + Δ(t, p)

where ``SL`` is the static level (largest sum of mean execution costs on
any path from ``t`` to an exit task, communications excluded) and
``Δ(t, p) = w̄(t) − w(t, p)`` rewards machines that run ``t`` faster than
average (the generalized-dynamic-level term that handles heterogeneity).

The per-(task, processor, predecessor) loops of the historical
implementation are replaced by one vectorized ``(preds, m)`` data-ready
query per ready task (kernel EFT primitive) — bit-identical selection
because the lexicographic ``(DL, −EST, −t, −p)`` tie-breaking is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule import _kernel
from repro.schedule.schedule import Schedule

__all__ = ["dls", "static_levels"]


def static_levels(workload: Workload) -> np.ndarray:
    """Static level SL(t): mean-cost longest path to an exit, no comm."""
    return _kernel.static_levels(workload)


def dls(workload: Workload, label: str = "DLS") -> Schedule:
    """Schedule ``workload`` with dynamic level scheduling."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    sl = static_levels(workload)
    mean_costs = workload.mean_durations()

    csr = graph.csr()
    lat, tau = workload.platform.latency, workload.platform.tau
    remaining_preds = np.diff(csr.pred_ptr).astype(int)
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    # A task's data-ready vector is fixed the moment it becomes ready
    # (all predecessors placed), so it is computed exactly once; only the
    # ``max(·, avail)`` and the dynamic level change between steps.
    data_ready: dict[int, np.ndarray] = {}
    deltas: dict[int, np.ndarray] = {}

    def enter(t: int) -> None:
        lo, hi = csr.pred_ptr[t], csr.pred_ptr[t + 1]
        data_ready[t] = _kernel.ready_times(
            finish, proc, csr.pred_ids[lo:hi], csr.pred_vol[lo:hi], lat, tau
        )
        deltas[t] = mean_costs[t] - workload.comp[t]

    ready = {v for v in range(n) if remaining_preds[v] == 0}
    for v in ready:
        enter(v)

    while ready:
        best = None  # ((dl, -est, -t, -p), task, proc, est)
        for t in sorted(ready):
            est = np.maximum(data_ready[t], avail)
            dl = sl[t] - est + deltas[t]
            for p in range(m):
                key = (dl[p], -est[p], -t, -p)
                if best is None or key > best[0]:
                    best = (key, t, p, est[p])
        (_, t, p, est) = best  # type: ignore[misc]
        proc[t] = p
        finish[t] = est + workload.comp[t, p]
        avail[p] = finish[t]
        sequence.append((t, p))
        ready.remove(t)
        del data_ready[t], deltas[t]
        for s in graph.successors(t):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                ready.add(s)
                enter(s)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)
