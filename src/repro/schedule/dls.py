"""DLS / GDL — Dynamic Level Scheduling (Sih & Lee, IEEE TPDS 1993).

Cited in the paper's introduction as GDL.  A dynamic list scheduler: at
every step it evaluates all (ready task, processor) pairs and commits the
pair with the highest *dynamic level*

    DL(t, p) = SL(t) − max(data_ready(t, p), avail(p)) + Δ(t, p)

where ``SL`` is the static level (largest sum of mean execution costs on
any path from ``t`` to an exit task, communications excluded) and
``Δ(t, p) = w̄(t) − w(t, p)`` rewards machines that run ``t`` faster than
average (the generalized-dynamic-level term that handles heterogeneity).
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule.schedule import Schedule

__all__ = ["dls", "static_levels"]


def static_levels(workload: Workload) -> np.ndarray:
    """Static level SL(t): mean-cost longest path to an exit, no comm."""
    graph = workload.graph
    w = workload.mean_durations()
    sl = np.zeros(graph.n_tasks)
    for v in graph.topological_order()[::-1]:
        v = int(v)
        tail = max((sl[s] for s in graph.successors(v)), default=0.0)
        sl[v] = w[v] + tail
    return sl


def dls(workload: Workload, label: str = "DLS") -> Schedule:
    """Schedule ``workload`` with dynamic level scheduling."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    sl = static_levels(workload)
    mean_costs = workload.mean_durations()

    remaining_preds = np.array(
        [len(graph.predecessors(v)) for v in range(n)], dtype=int
    )
    ready = {v for v in range(n) if remaining_preds[v] == 0}
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    while ready:
        best = None  # (dl, -est, task, proc)
        for t in sorted(ready):
            delta = mean_costs[t] - workload.comp[t]
            for p in range(m):
                data_ready = 0.0
                for u in graph.predecessors(t):
                    comm = 0.0
                    if int(proc[u]) != p:
                        comm = workload.platform.comm_time(
                            graph.volume(u, t), int(proc[u]), p
                        )
                    data_ready = max(data_ready, finish[u] + comm)
                est = max(data_ready, avail[p])
                dl = sl[t] - est + delta[p]
                key = (dl, -est, -t, -p)
                if best is None or key > best[0]:
                    best = (key, t, p, est)
        (_, t, p, est) = best  # type: ignore[misc]
        proc[t] = p
        finish[t] = est + workload.comp[t, p]
        avail[p] = finish[t]
        sequence.append((t, p))
        ready.remove(t)
        for s in graph.successors(t):
            remaining_preds[s] -= 1
            if remaining_preds[s] == 0:
                ready.add(s)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)
