"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu).

Two phases:

1. **Ranking**: tasks are sorted by decreasing *upward rank*
   ``rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))`` where ``w̄`` is
   the machine-averaged computation cost and ``c̄`` the pair-averaged
   communication cost.
2. **Processor selection**: in rank order, each task goes to the processor
   minimizing its earliest *finish* time, using insertion-based policy (a
   task may fill an idle gap).

The resulting per-processor orders define an eager schedule; replaying them
eagerly reproduces HEFT's own start times.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule._timeline import Timeline
from repro.schedule.schedule import Schedule

__all__ = ["heft", "upward_ranks"]


def upward_ranks(
    workload: Workload, durations: np.ndarray | None = None
) -> np.ndarray:
    """Upward rank of every task (machine-averaged costs by default).

    ``durations`` overrides the per-task cost vector (used by the σ-HEFT
    extension which ranks by mean + k·σ).
    """
    graph = workload.graph
    w = workload.mean_durations() if durations is None else np.asarray(durations)
    ranks = np.zeros(graph.n_tasks)
    for v in graph.topological_order()[::-1]:
        v = int(v)
        tail = 0.0
        for s in graph.successors(v):
            c = workload.mean_comm_time(v, s)
            tail = max(tail, c + ranks[s])
        ranks[v] = w[v] + tail
    return ranks


def heft(
    workload: Workload,
    insertion: bool = True,
    label: str = "HEFT",
    durations: np.ndarray | None = None,
    comp: np.ndarray | None = None,
) -> Schedule:
    """Schedule ``workload`` with HEFT.

    Parameters
    ----------
    insertion:
        Use the insertion-based policy of the original paper (default).
    durations, comp:
        Optional overrides of the ranking vector and the cost matrix used
        for processor selection — hooks for the σ-HEFT extension.  The
        *returned* schedule always replays with the workload's true minimum
        durations.
    """
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    costs = workload.comp if comp is None else np.asarray(comp)
    ranks = upward_ranks(workload, durations)
    # Decreasing rank is a topological order (rank_u strictly decreases along
    # edges for positive costs); ties broken by task id for determinism.
    order = sorted(range(n), key=lambda t: (-ranks[t], t))

    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = [Timeline() for _ in range(m)]

    for task in order:
        best_p, best_start, best_finish = -1, 0.0, np.inf
        for p in range(m):
            ready = 0.0
            for u in graph.predecessors(task):
                comm = 0.0
                if int(proc[u]) != p:
                    comm = workload.platform.comm_time(
                        graph.volume(u, task), int(proc[u]), p
                    )
                arrival = finish[u] + comm
                if arrival > ready:
                    ready = arrival
            duration = float(costs[task, p])
            start = timelines[p].earliest_start(ready, duration, insertion)
            eft = start + duration
            if eft < best_finish - 1e-12:
                best_p, best_start, best_finish = p, start, eft
        duration = float(costs[task, best_p])
        timelines[best_p].insert(task, best_start, duration)
        proc[task] = best_p
        finish[task] = best_finish

    orders = [tl.order() for tl in timelines]
    return Schedule.from_proc_orders(workload, proc, orders, label=label)
