"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu).

Two phases:

1. **Ranking**: tasks are sorted by decreasing *upward rank*
   ``rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))`` where ``w̄`` is
   the machine-averaged computation cost and ``c̄`` the pair-averaged
   communication cost.
2. **Processor selection**: in rank order, each task goes to the processor
   minimizing its earliest *finish* time, using insertion-based policy (a
   task may fill an idle gap).

The resulting per-processor orders define an eager schedule; replaying them
eagerly reproduces HEFT's own start times.

Both phases run on the vectorized scheduler core
(:mod:`repro.schedule._kernel`): ranks are level-synchronous CSR passes and
each task's EFT is evaluated on all ``m`` processors with one array query —
bit-identical (including every ``1e-12`` tie-break) to the historical
per-processor loops kept in :mod:`repro.schedule._reference`.
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule import _kernel
from repro.schedule.schedule import Schedule

__all__ = ["heft", "upward_ranks"]


def upward_ranks(
    workload: Workload, durations: np.ndarray | None = None
) -> np.ndarray:
    """Upward rank of every task (machine-averaged costs by default).

    ``durations`` overrides the per-task cost vector (used by the σ-HEFT
    extension which ranks by mean + k·σ).
    """
    return _kernel.upward_ranks(workload, durations)


def heft(
    workload: Workload,
    insertion: bool = True,
    label: str = "HEFT",
    durations: np.ndarray | None = None,
    comp: np.ndarray | None = None,
) -> Schedule:
    """Schedule ``workload`` with HEFT.

    Parameters
    ----------
    insertion:
        Use the insertion-based policy of the original paper (default).
    durations, comp:
        Optional overrides of the ranking vector and the cost matrix used
        for processor selection — hooks for the σ-HEFT extension.  The
        *returned* schedule always replays with the workload's true minimum
        durations.
    """
    n, m = workload.n_tasks, workload.m
    costs = workload.comp if comp is None else np.asarray(comp)
    ranks = upward_ranks(workload, durations)
    # Decreasing rank is a topological order (rank_u strictly decreases along
    # edges for positive costs); ties broken by task id for determinism.
    order = sorted(range(n), key=lambda t: (-ranks[t], t))

    csr = workload.graph.csr()
    lat, tau = workload.platform.latency, workload.platform.tau
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    timelines = _kernel.Timelines(m)

    for task in order:
        lo, hi = csr.pred_ptr[task], csr.pred_ptr[task + 1]
        ready = _kernel.ready_times(
            finish, proc, csr.pred_ids[lo:hi], csr.pred_vol[lo:hi], lat, tau
        )
        dur = costs[task].astype(float)
        start = timelines.earliest_start(ready, dur, insertion)
        eft = start + dur
        # Sequential strict-improvement scan, exactly like the historical
        # per-processor loop (a later processor must beat the incumbent by
        # more than 1e-12 to win the tie).
        best_p, best_finish = -1, np.inf
        for p in range(m):
            if eft[p] < best_finish - 1e-12:
                best_p, best_finish = p, float(eft[p])
        timelines.insert(best_p, task, float(start[best_p]), float(dur[best_p]))
        proc[task] = best_p
        finish[task] = best_finish

    return Schedule.from_proc_orders(workload, proc, timelines.orders(), label=label)
