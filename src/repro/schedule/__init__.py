"""Eager schedules and the scheduling heuristics compared in the paper.

A schedule assigns every task to a processor with a per-processor execution
order.  The paper restricts itself to *eager* schedules: once allocated, a
task starts as soon as its predecessors' data has arrived and its processor
is free, in the order given by the schedule — no deliberate idle slack is
inserted.  Under uncertainty the per-processor orders stay fixed and start
times are recomputed per realization, which is a longest-path computation on
the *disjunctive graph* (precedence edges + same-processor chaining edges).

Schedulers
----------
* :func:`random_schedule` — the paper's uniform random eager scheduler
  (random ready task → random processor), used to populate the metric panels;
* :func:`heft` — Heterogeneous Earliest Finish Time (Topcuoglu et al.);
* :func:`bil` — Best Imaginary Level (Oh & Ha);
* :func:`bmct` — the Hybrid BMCT heuristic (Sakellariou & Zhao);
* :func:`cpop`, :func:`greedy_eft`, :func:`sigma_heft` — extension baselines
  (CPOP, a greedy list scheduler, and the paper's future-work idea of
  ranking by mean + k·σ duration).
"""

from repro.schedule.schedule import Schedule
from repro.schedule.disjunctive import DisjunctiveGraph
from repro.schedule.random_schedule import random_schedule, random_schedules
from repro.schedule.heft import heft
from repro.schedule.bil import bil
from repro.schedule.bmct import bmct
from repro.schedule.cpop import cpop
from repro.schedule.dls import dls
from repro.schedule.baselines import greedy_eft, sigma_heft

__all__ = [
    "Schedule",
    "DisjunctiveGraph",
    "random_schedule",
    "random_schedules",
    "heft",
    "bil",
    "bmct",
    "cpop",
    "dls",
    "greedy_eft",
    "sigma_heft",
]

#: Heuristics evaluated in the paper's panels, by name.
PAPER_HEURISTICS = {"heft": heft, "bil": bil, "bmct": bmct}

#: All implemented heuristics (paper + extensions).
ALL_HEURISTICS = {
    "heft": heft,
    "bil": bil,
    "bmct": bmct,
    "cpop": cpop,
    "dls": dls,
    "greedy_eft": greedy_eft,
}
