"""Per-processor timeline bookkeeping shared by the list heuristics."""

from __future__ import annotations

import bisect

__all__ = ["Timeline"]


class Timeline:
    """Occupied intervals of one processor, kept sorted by start time.

    Supports both *append* scheduling (eager, no insertion) and HEFT-style
    *insertion* scheduling (a task may fill an idle gap between two already
    placed tasks).
    """

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: list[tuple[float, float, int]] = []  # (start, finish, task)

    @property
    def available(self) -> float:
        """Finish time of the last task (0 when empty)."""
        return self._slots[-1][1] if self._slots else 0.0

    def earliest_start(self, ready: float, duration: float, insertion: bool) -> float:
        """Earliest start ≥ ``ready`` for a task of ``duration``.

        With ``insertion`` the first sufficiently large idle gap is used,
        otherwise the task goes after the current last task.
        """
        if not insertion or not self._slots:
            return max(ready, self.available)
        # Gap before the first slot.
        prev_finish = 0.0
        for slot_start, slot_finish, _ in self._slots:
            candidate = max(ready, prev_finish)
            if candidate + duration <= slot_start + 1e-12:
                return candidate
            prev_finish = slot_finish
        return max(ready, prev_finish)

    def insert(self, task: int, start: float, duration: float) -> None:
        """Place ``task`` at ``start`` (must not overlap existing slots)."""
        finish = start + duration
        idx = bisect.bisect_left(self._slots, (start, finish, task))
        if idx > 0 and self._slots[idx - 1][1] > start + 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        if idx < len(self._slots) and self._slots[idx][0] < finish - 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        self._slots.insert(idx, (start, finish, task))

    def order(self) -> list[int]:
        """Tasks in execution (start-time) order."""
        return [task for _, _, task in self._slots]
