"""Per-processor timeline bookkeeping (legacy slot-list implementation).

The list heuristics now run on the array-backed
:class:`~repro.schedule._kernel.Timelines`; this class is kept as the
simple, obviously-correct reference that the kernel is cross-checked
against (``tests/schedule/test_kernel_bitidentity.py``) and for the frozen
heuristics in :mod:`repro.schedule._reference`.
"""

from __future__ import annotations

import bisect

__all__ = ["Timeline"]


class Timeline:
    """Occupied intervals of one processor, kept sorted by start time.

    Supports both *append* scheduling (eager, no insertion) and HEFT-style
    *insertion* scheduling (a task may fill an idle gap between two already
    placed tasks).

    Invariant: distinct slots never share a start time unless all but one
    of them have zero duration — any other equal-start pair would overlap
    and is rejected by :meth:`insert`.  Searches are therefore keyed on
    the start time alone (a full ``(start, finish, task)`` tuple bisect
    would order equal-start slots by finish/task, silently depending on
    payload values that have no scheduling meaning).  A new slot goes
    *after* existing equal-start (necessarily zero-duration) slots —
    insertion order, which keeps a positive-duration task insertable at
    the same instant; the mutual order of zero-duration slots is
    irrelevant to replay because they occupy a single point in time.
    """

    __slots__ = ("_slots", "_starts")

    def __init__(self) -> None:
        self._slots: list[tuple[float, float, int]] = []  # (start, finish, task)
        self._starts: list[float] = []  # parallel start keys for bisect

    @property
    def available(self) -> float:
        """Finish time of the last task (0 when empty)."""
        return self._slots[-1][1] if self._slots else 0.0

    def earliest_start(self, ready: float, duration: float, insertion: bool) -> float:
        """Earliest start ≥ ``ready`` for a task of ``duration``.

        With ``insertion`` the first sufficiently large idle gap is used,
        otherwise the task goes after the current last task.
        """
        if not insertion or not self._slots:
            return max(ready, self.available)
        # Gap before the first slot.
        prev_finish = 0.0
        for slot_start, slot_finish, _ in self._slots:
            candidate = max(ready, prev_finish)
            if candidate + duration <= slot_start + 1e-12:
                return candidate
            prev_finish = slot_finish
        return max(ready, prev_finish)

    def insert(self, task: int, start: float, duration: float) -> None:
        """Place ``task`` at ``start`` (must not overlap existing slots)."""
        finish = start + duration
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0 and self._slots[idx - 1][1] > start + 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        if idx < len(self._slots) and self._slots[idx][0] < finish - 1e-12:
            raise ValueError(f"slot overlap placing task {task} at {start}")
        self._slots.insert(idx, (start, finish, task))
        self._starts.insert(idx, start)

    def order(self) -> list[int]:
        """Tasks in execution (start-time) order."""
        return [task for _, _, task in self._slots]
