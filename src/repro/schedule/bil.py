"""BIL — Best Imaginary Level scheduling (Oh & Ha, Euro-Par 1996).

The *basic imaginary level* of task ``i`` on processor ``j`` is the length
of the best-case critical path from ``i`` to the exit when ``i`` runs on
``j``::

    BIL(i, j) = w_ij + max_{k ∈ succ(i)} min_{j'} ( BIL(k, j') + c_ik·[j ≠ j'] )

computed bottom-up.  Scheduling proceeds over the ready list: each ready
task's *basic imaginary makespan* on each processor is
``BIM(i, j) = max(EST(i, j), avail(j)) + BIL(i, j)``; following Oh & Ha,
each task's BIM values are sorted increasingly, the task selection priority
is its ``k``-th smallest BIM (``k`` = min(#ready tasks, m), reflecting that
with many competitors a task will not get its favourite processor), ties
broken by larger BIL range (more critical tasks first).  The selected task
goes to the processor with the smallest BIM (eager append, no insertion —
BIL is a pure list scheduler).
"""

from __future__ import annotations

import numpy as np

from repro.platform.workload import Workload
from repro.schedule import _kernel
from repro.schedule.schedule import Schedule

__all__ = ["bil", "bil_levels"]


def bil_levels(workload: Workload) -> np.ndarray:
    """``(n, m)`` matrix of Best Imaginary Levels.

    Computed as a reverse level-synchronous CSR pass (kernel), bit-identical
    to the historical per-(task, processor, processor) loops.
    """
    return _kernel.bil_levels(workload)


def bil(workload: Workload, label: str = "BIL") -> Schedule:
    """Schedule ``workload`` with the BIL heuristic."""
    graph = workload.graph
    n, m = workload.n_tasks, workload.m
    levels = bil_levels(workload)

    csr = graph.csr()
    lat, tau = workload.platform.latency, workload.platform.tau
    remaining_preds = np.diff(csr.pred_ptr).astype(int)
    proc = np.full(n, -1, dtype=np.intp)
    finish = np.zeros(n)
    avail = np.zeros(m)
    sequence: list[tuple[int, int]] = []

    # A task's data-ready vector is fixed the moment it becomes ready
    # (all predecessors placed): computed once per task, not per step.
    ests: dict[int, np.ndarray] = {}

    def enter(t: int) -> None:
        lo, hi = csr.pred_ptr[t], csr.pred_ptr[t + 1]
        ests[t] = _kernel.ready_times(
            finish, proc, csr.pred_ids[lo:hi], csr.pred_vol[lo:hi], lat, tau
        )

    ready = [v for v in range(n) if remaining_preds[v] == 0]
    for v in ready:
        enter(v)

    while ready:
        k = min(len(ready), m)
        best_task, best_key = -1, None
        bims: dict[int, np.ndarray] = {}
        for t in ready:
            bim = np.maximum(ests[t], avail) + levels[t]
            bims[t] = bim
            s = np.sort(bim)
            # Priority: the k-th smallest BIM, i.e. the makespan this task
            # can still guarantee if its k−1 better processors are taken.
            # Larger is more urgent.  Tie-break: wider BIL spread first.
            key = (s[k - 1], float(levels[t].max() - levels[t].min()), -t)
            if best_key is None or key > best_key:
                best_task, best_key = t, key
        bim = bims[best_task]
        p = int(np.argmin(bim))
        proc[best_task] = p
        start = max(avail[p], float(bim[p] - levels[best_task, p]))
        finish[best_task] = start + workload.comp[best_task, p]
        avail[p] = finish[best_task]
        sequence.append((best_task, p))
        ready.remove(best_task)
        del ests[best_task]
        for s_ in graph.successors(best_task):
            remaining_preds[s_] -= 1
            if remaining_preds[s_] == 0:
                ready.append(s_)
                enter(s_)

    return Schedule.from_assignment_sequence(workload, sequence, label=label)
