"""Semantic layer of the case-set algebra: expressions ↔ campaign cases.

A case-set expression selects whole suites with one line, ClusterShell
``NodeSet``-style::

    graph[chol84,ge90] x ul[0.1-0.6/0.1] x seed[0-9] x heuristic[heft,cpop]

Product axes (``graph``, ``ul``, ``seed``, ``method``) multiply into
cases; modifier axes (``heuristic`` — the per-case panel — plus
``scale``, ``base_seed``, ``n_random``, ``grid_n``, ``mc_realizations``,
``delta``, ``gamma``, ``mc_batch``, ``fast_conv``) take a single value
and apply to every case of their term.  Graph tokens name a family by
its *task count* (``rand100``, ``chol84`` = Cholesky b=7, ``ge90`` = GE
b=13), mirroring how the paper labels its graphs.

The contract that makes the algebra safe to put in front of the cache:

* **Expansion is deterministic.**  Axis values are canonicalized
  (sorted, deduplicated) at parse time and the product unrolls in a
  fixed odometer order — ``ul`` slowest, then ``graph``, ``seed``,
  ``method`` — so the same expression always yields the same ordered
  case list, and therefore the same aggregate bytes.
* **Expanded cases are the campaign's own.**  Each coordinate builds a
  :class:`~repro.campaign.spec.CampaignCase` exactly as the service's
  ``/case`` resolver would (same scale-derived population defaults), so
  sweep cases share artifact keys with every other layer of the stack.
* **fold ∘ expand is the identity on sets.**  :meth:`CaseSet.fold`
  re-compacts any case set to a canonical expression that re-expands to
  the identical case keys — so "what's missing from the cache" is
  itself a set expression you can paste back into a sweep.

Set operators (``,`` union, ``&`` intersection, ``!`` difference,
left-associative) and the Python operators ``| & -`` on
:class:`CaseSet` work on case *keys* (content hashes), so two different
spellings of the same case — say an explicit ``n_random`` equal to the
scale default — coincide exactly when their artifacts would.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.campaign.spec import CampaignCase
from repro.caseset.grammar import (
    CaseSetError,
    fold_floats,
    fold_ints,
    format_float,
    parse_float_values,
    parse_int_values,
    parse_term,
    split_expression,
)
from repro.core.metrics import DEFAULT_DELTA, DEFAULT_GAMMA
from repro.dag.cholesky import cholesky_task_count
from repro.dag.gaussian_elim import ge_task_count
from repro.experiments.cases import CaseSpec
from repro.experiments.scale import get_scale
from repro.schedule import ALL_HEURISTICS

__all__ = [
    "CaseEntry",
    "CaseSet",
    "GraphToken",
    "Profile",
    "as_caseset",
    "expand",
    "fold",
    "parse",
]

_METHODS = ("classical", "dodin", "spelde", "montecarlo")
_SCALES = ("quick", "default", "paper")
_KIND_RANK = {"random": 0, "cholesky": 1, "ge": 2}
_KIND_PREFIX = {"random": "rand", "cholesky": "chol", "ge": "ge"}
_GRAPH_TOKEN = re.compile(r"^(rand|random|chol|cholesky|ge)(\d+)$")
_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}

#: Inverse task-count tables: n_tasks → structure parameter b.
_CHOL_COUNTS = {cholesky_task_count(b): b for b in range(1, 41)}
_GE_COUNTS = {ge_task_count(b): b for b in range(2, 41)}

_CASE_DEFAULTS = {
    f.name: f.default for f in dataclasses.fields(CampaignCase)
}
_DEFAULT_BASE_SEED: int = _CASE_DEFAULTS["base_seed"]
_DEFAULT_PANEL: tuple[str, ...] = _CASE_DEFAULTS["heuristics"]
_DEFAULT_SCALE = "quick"

#: Every axis the grammar accepts (aliases map onto these).
_KNOWN_AXES = (
    "graph",
    "ul",
    "seed",
    "method",
    "heuristic",
    "scale",
    "base_seed",
    "n_random",
    "grid_n",
    "mc_realizations",
    "delta",
    "gamma",
    "mc_batch",
    "fast_conv",
)
_AXIS_ALIASES = {"instance": "seed", "heuristics": "heuristic"}


@dataclass(frozen=True)
class GraphToken:
    """One graph-family axis value: a (kind, structure parameter) pair."""

    kind: str
    param: int

    @property
    def n_tasks(self) -> int:
        """Task count of this graph (what the token spells)."""
        return CaseSpec(self.kind, self.param, 1.0).n_tasks

    @property
    def token(self) -> str:
        """Canonical spelling: ``rand100`` / ``chol84`` / ``ge90``."""
        return f"{_KIND_PREFIX[self.kind]}{self.n_tasks}"

    @property
    def sort_key(self) -> tuple[int, int]:
        """Canonical axis order: random < cholesky < ge, then by size."""
        return (_KIND_RANK[self.kind], self.n_tasks)


def _parse_graph(raw: str) -> GraphToken:
    """Resolve one graph token to its (kind, param) pair — or explain."""
    match = _GRAPH_TOKEN.match(raw.strip().lower())
    if match is None:
        raise CaseSetError(
            f"graph must look like rand10 / chol84 / ge90, got {raw!r}"
        )
    word, count = match.group(1), int(match.group(2))
    if word in ("rand", "random"):
        if count < 1:
            raise CaseSetError(f"random graph needs >= 1 task, got {raw!r}")
        return GraphToken("random", count)
    kind = "cholesky" if word in ("chol", "cholesky") else "ge"
    table = _CHOL_COUNTS if kind == "cholesky" else _GE_COUNTS
    if count in table:
        return GraphToken(kind, table[count])
    below = max((c for c in table if c < count), default=None)
    above = min((c for c in table if c > count), default=None)
    near = ", ".join(
        f"{c} (b={table[c]})" for c in (below, above) if c is not None
    )
    raise CaseSetError(
        f"no {kind} graph has {count} tasks; nearest valid counts: {near}"
    )


@dataclass(frozen=True)
class Profile:
    """The non-product modifiers shared by every case of a term.

    ``None`` population fields defer to the named scale per graph size,
    exactly like the service's ``/case`` resolver; the ``heuristics``
    tuple is the per-case evaluation panel (order is part of the case's
    identity, so it is preserved verbatim through fold/parse).
    """

    scale: str = _DEFAULT_SCALE
    base_seed: int = _DEFAULT_BASE_SEED
    heuristics: tuple[str, ...] = _DEFAULT_PANEL
    n_random: int | None = None
    grid_n: int | None = None
    mc_realizations: int | None = None
    delta: float = DEFAULT_DELTA
    gamma: float = DEFAULT_GAMMA
    mc_batch: bool = False
    fast_conv: bool = False


@dataclass(frozen=True)
class CaseEntry:
    """One expanded coordinate: a profile plus its product-axis values."""

    profile: Profile
    method: str
    ul: float
    graph: GraphToken
    seed: int

    def to_case(self) -> CampaignCase:
        """Build the campaign case this coordinate names.

        Population sizes default from the profile's scale per graph
        size, identically to ``case_from_query`` — parsing drift here
        would change artifact keys and silently miss the cache.
        """
        spec = CaseSpec(self.graph.kind, self.graph.param, self.ul, self.seed)
        p = self.profile
        scale = get_scale(p.scale)
        return CampaignCase(
            spec=spec,
            base_seed=p.base_seed,
            n_random=(
                p.n_random
                if p.n_random is not None
                else scale.n_random(spec.n_tasks)
            ),
            grid_n=p.grid_n if p.grid_n is not None else scale.grid_n,
            method=self.method,
            heuristics=p.heuristics,
            delta=p.delta,
            gamma=p.gamma,
            mc_realizations=(
                p.mc_realizations
                if p.mc_realizations is not None
                else scale.mc_realizations
            ),
            mc_batch=p.mc_batch,
            fast_conv=p.fast_conv,
        )


# ---------------------------------------------------------------------- #
# term expansion
# ---------------------------------------------------------------------- #


def _single(axes: dict[str, list[str]], name: str) -> str:
    """Fetch a modifier axis's value, insisting on exactly one."""
    values = axes[name]
    if len(values) != 1:
        raise CaseSetError(
            f"{name} is a modifier, not a product axis; give exactly one "
            f"value, got {values}"
        )
    return values[0]


def _single_int(
    axes: dict[str, list[str]], name: str, minimum: int | None = None
) -> int:
    """Parse a singleton integer modifier with an optional lower bound."""
    raw = _single(axes, name)
    try:
        value = int(raw)
    except ValueError:
        raise CaseSetError(f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise CaseSetError(f"{name} must be >= {minimum}, got {value}")
    return value


def _single_float(axes: dict[str, list[str]], name: str) -> float:
    """Parse a singleton float modifier."""
    raw = _single(axes, name)
    try:
        return float(raw)
    except ValueError:
        raise CaseSetError(f"{name} must be a number, got {raw!r}") from None


def _single_bool(axes: dict[str, list[str]], name: str) -> bool:
    """Parse a singleton boolean modifier (1/0, true/false, yes/no)."""
    raw = _single(axes, name).lower()
    if raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    raise CaseSetError(f"{name} must be a boolean, got {raw!r}")


def _term_entries(
    axes: dict[str, list[str]], max_cases: int | None = None
) -> list[CaseEntry]:
    """Expand one parsed term into its ordered coordinate list."""
    normalized: dict[str, list[str]] = {}
    for name, values in axes.items():
        canonical = _AXIS_ALIASES.get(name, name)
        if canonical not in _KNOWN_AXES:
            raise CaseSetError(
                f"unknown axis {name!r}; expected one of {list(_KNOWN_AXES)}"
            )
        if canonical in normalized:
            raise CaseSetError(f"axis {canonical!r} appears twice in one term")
        normalized[canonical] = values
    axes = normalized
    for required in ("graph", "ul"):
        if required not in axes:
            raise CaseSetError(f"a term must select {required}[...]")

    graphs = sorted(
        dict.fromkeys(_parse_graph(raw) for raw in axes["graph"]),
        key=lambda g: g.sort_key,
    )
    uls = parse_float_values("ul", axes["ul"])
    if any(ul <= 0 for ul in uls):
        raise CaseSetError(f"ul must be > 0, got {min(uls)}")
    seeds = parse_int_values("seed", axes["seed"]) if "seed" in axes else [0]

    methods = [_DEFAULT_CASE_METHOD]
    if "method" in axes:
        methods = list(dict.fromkeys(axes["method"]))
        for method in methods:
            if method not in _METHODS:
                raise CaseSetError(
                    f"method must be one of {_METHODS}, got {method!r}"
                )
        methods.sort(key=_METHODS.index)

    profile_kwargs: dict = {}
    if "heuristic" in axes:
        panel = tuple(dict.fromkeys(axes["heuristic"]))
        for name in panel:
            if name not in ALL_HEURISTICS:
                raise CaseSetError(
                    f"unknown heuristic {name!r}; expected a subset of "
                    f"{sorted(ALL_HEURISTICS)}"
                )
        profile_kwargs["heuristics"] = panel
    if "scale" in axes:
        scale = _single(axes, "scale")
        if scale not in _SCALES:
            raise CaseSetError(
                f"scale must be one of {_SCALES}, got {scale!r}"
            )
        profile_kwargs["scale"] = scale
    if "base_seed" in axes:
        profile_kwargs["base_seed"] = _single_int(axes, "base_seed")
    if "n_random" in axes:
        profile_kwargs["n_random"] = _single_int(axes, "n_random", minimum=0)
    if "grid_n" in axes:
        profile_kwargs["grid_n"] = _single_int(axes, "grid_n", minimum=2)
    if "mc_realizations" in axes:
        profile_kwargs["mc_realizations"] = _single_int(
            axes, "mc_realizations", minimum=1
        )
    if "delta" in axes:
        profile_kwargs["delta"] = _single_float(axes, "delta")
    if "gamma" in axes:
        profile_kwargs["gamma"] = _single_float(axes, "gamma")
    if "mc_batch" in axes:
        profile_kwargs["mc_batch"] = _single_bool(axes, "mc_batch")
    if "fast_conv" in axes:
        profile_kwargs["fast_conv"] = _single_bool(axes, "fast_conv")
    profile = Profile(**profile_kwargs)

    if profile.mc_batch and any(m != "montecarlo" for m in methods):
        raise CaseSetError(
            "mc_batch requires method[montecarlo], got "
            f"method{list(methods)}"
        )

    size = len(uls) * len(graphs) * len(seeds) * len(methods)
    if max_cases is not None and size > max_cases:
        raise CaseSetError(
            f"term expands to {size} cases, over the {max_cases}-case limit"
        )
    return [
        CaseEntry(profile, method, ul, graph, seed)
        for ul in uls
        for graph in graphs
        for seed in seeds
        for method in methods
    ]


_DEFAULT_CASE_METHOD = _CASE_DEFAULTS["method"]


# ---------------------------------------------------------------------- #
# the case set
# ---------------------------------------------------------------------- #


class CaseSet:
    """An ordered, key-deduplicated set of campaign cases.

    Construction expands every entry to its :class:`CampaignCase` once;
    identity for all set operations is the case *key* (content hash), so
    equal cases written differently coincide.  Iteration order is
    insertion order — deterministic for any fixed expression — and is
    the fold order of every aggregate computed over the set.
    """

    def __init__(self, entries: Iterable[CaseEntry]):
        self._pairs: list[tuple[CaseEntry, CampaignCase]] = []
        self._index: dict[str, int] = {}
        for entry in entries:
            case = entry.to_case()
            if case.key in self._index:
                continue
            self._index[case.key] = len(self._pairs)
            self._pairs.append((entry, case))

    @classmethod
    def _from_pairs(
        cls, pairs: Iterable[tuple[CaseEntry, CampaignCase]]
    ) -> "CaseSet":
        """Internal constructor that skips re-deriving cases."""
        obj = cls.__new__(cls)
        obj._pairs = []
        obj._index = {}
        for entry, case in pairs:
            if case.key in obj._index:
                continue
            obj._index[case.key] = len(obj._pairs)
            obj._pairs.append((entry, case))
        return obj

    # -- views ---------------------------------------------------------- #

    def cases(self) -> list[CampaignCase]:
        """The expanded cases, in deterministic set order."""
        return [case for _, case in self._pairs]

    def entries(self) -> list[CaseEntry]:
        """The coordinate entries, in deterministic set order."""
        return [entry for entry, _ in self._pairs]

    def keys(self) -> list[str]:
        """The case keys (artifact identities), in set order."""
        return [case.key for _, case in self._pairs]

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __iter__(self) -> Iterator[CampaignCase]:
        return iter(self.cases())

    def __contains__(self, item: "CampaignCase | str") -> bool:
        key = item.key if isinstance(item, CampaignCase) else item
        return key in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CaseSet):
            return NotImplemented
        return self.keys() == other.keys()

    def __hash__(self) -> int:  # pragma: no cover - sets of sets unused
        return hash(tuple(self._index))

    def __repr__(self) -> str:
        return f"CaseSet({len(self._pairs)} cases: {self.fold()!r})"

    # -- algebra -------------------------------------------------------- #

    def __or__(self, other: "CaseSet") -> "CaseSet":
        """Union: self's entries, then other's unseen ones."""
        return CaseSet._from_pairs(self._pairs + other._pairs)

    def __and__(self, other: "CaseSet") -> "CaseSet":
        """Intersection, keeping self's order."""
        return CaseSet._from_pairs(
            pair for pair in self._pairs if pair[1].key in other._index
        )

    def __sub__(self, other: "CaseSet") -> "CaseSet":
        """Difference, keeping self's order."""
        return CaseSet._from_pairs(
            pair for pair in self._pairs if pair[1].key not in other._index
        )

    def subset(self, keys: Iterable[str]) -> "CaseSet":
        """The members whose case key is in ``keys``, in set order."""
        wanted = set(keys)
        return CaseSet._from_pairs(
            pair for pair in self._pairs if pair[1].key in wanted
        )

    # -- folding -------------------------------------------------------- #

    def fold(self) -> str:
        """Re-compact this set to its canonical expression.

        Entries sharing a profile are covered by greedy axis merging
        (seeds, then ULs, then graphs, then methods — a full product
        collapses to one term; irregular sets become a disjoint union of
        product terms).  The result re-expands to the identical case
        keys; an empty set folds to the empty string.
        """
        if not self._pairs:
            return ""
        groups: dict[Profile, list[CaseEntry]] = {}
        for entry, _ in self._pairs:
            groups.setdefault(entry.profile, []).append(entry)
        printed: list[str] = []
        for profile, entries in groups.items():
            printed.extend(
                _print_term(profile, *term) for term in _cover(entries)
            )
        return ", ".join(sorted(printed))


def _cover(
    entries: list[CaseEntry],
) -> list[tuple[frozenset, frozenset, frozenset, frozenset]]:
    """Greedy rectangle cover of coordinates sharing one profile.

    Terms are (methods, uls, graphs, seeds) value-set tuples; merging
    along one axis groups terms equal on the other three and unions the
    axis values.  One pass per axis suffices to collapse any exact
    product; leftovers stay as disjoint smaller products.
    """
    terms: list[tuple[frozenset, ...]] = [
        (
            frozenset([e.method]),
            frozenset([e.ul]),
            frozenset([e.graph]),
            frozenset([e.seed]),
        )
        for e in entries
    ]
    for axis in (3, 1, 2, 0):  # seeds, uls, graphs, methods
        grouped: dict[tuple, list[frozenset]] = {}
        for term in terms:
            key = tuple(term[i] for i in range(4) if i != axis)
            grouped.setdefault(key, []).append(term[axis])
        terms = []
        for key, values in grouped.items():
            merged = list(key)
            merged.insert(axis, frozenset().union(*values))
            terms.append(tuple(merged))
    return terms  # type: ignore[return-value]


def _print_term(
    profile: Profile,
    methods: frozenset,
    uls: frozenset,
    graphs: frozenset,
    seeds: frozenset,
) -> str:
    """Render one product term canonically, omitting default axes."""
    parts = [
        "graph[{}]".format(
            ",".join(
                g.token for g in sorted(graphs, key=lambda g: g.sort_key)
            )
        ),
        f"ul[{fold_floats(sorted(uls))}]",
    ]
    if seeds != {0}:
        parts.append(f"seed[{fold_ints(sorted(seeds))}]")
    if methods != {_DEFAULT_CASE_METHOD}:
        parts.append(
            "method[{}]".format(
                ",".join(sorted(methods, key=_METHODS.index))
            )
        )
    if profile.heuristics != _DEFAULT_PANEL:
        parts.append("heuristic[{}]".format(",".join(profile.heuristics)))
    if profile.scale != _DEFAULT_SCALE:
        parts.append(f"scale[{profile.scale}]")
    if profile.base_seed != _DEFAULT_BASE_SEED:
        parts.append(f"base_seed[{profile.base_seed}]")
    if profile.n_random is not None:
        parts.append(f"n_random[{profile.n_random}]")
    if profile.grid_n is not None:
        parts.append(f"grid_n[{profile.grid_n}]")
    if profile.mc_realizations is not None:
        parts.append(f"mc_realizations[{profile.mc_realizations}]")
    if profile.delta != DEFAULT_DELTA:
        parts.append(f"delta[{format_float(profile.delta)}]")
    if profile.gamma != DEFAULT_GAMMA:
        parts.append(f"gamma[{format_float(profile.gamma)}]")
    if profile.mc_batch:
        parts.append("mc_batch[1]")
    if profile.fast_conv:
        parts.append("fast_conv[1]")
    return " x ".join(parts)


# ---------------------------------------------------------------------- #
# module-level conveniences
# ---------------------------------------------------------------------- #


def parse(text: str, *, max_cases: int | None = None) -> CaseSet:
    """Parse a case-set expression into a :class:`CaseSet`.

    Set operators apply left to right; ``max_cases`` bounds both each
    term's product size and the running result (the service's sweep cap
    — oversize expressions fail before any expansion work).
    """
    result: CaseSet | None = None
    for op, term_text in split_expression(text):
        term_set = CaseSet(_term_entries(parse_term(term_text), max_cases))
        if result is None:
            result = term_set
        elif op == "union":
            result = result | term_set
        elif op == "intersect":
            result = result & term_set
        else:
            result = result - term_set
        if max_cases is not None and len(result) > max_cases:
            raise CaseSetError(
                f"expression expands to {len(result)} cases, over the "
                f"{max_cases}-case limit"
            )
    assert result is not None  # split_expression rejects empty input
    return result


def as_caseset(
    expr: "str | CaseSet", *, max_cases: int | None = None
) -> CaseSet:
    """Coerce an expression string (or pass through a set) to a CaseSet."""
    if isinstance(expr, CaseSet):
        return expr
    return parse(expr, max_cases=max_cases)


def expand(
    expr: "str | CaseSet", *, max_cases: int | None = None
) -> list[CampaignCase]:
    """The deterministic ordered case list an expression selects."""
    return as_caseset(expr, max_cases=max_cases).cases()


def fold(expr: "str | CaseSet") -> str:
    """The canonical compact form of an expression or case set."""
    return as_caseset(expr).fold()
