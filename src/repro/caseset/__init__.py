"""Case-set algebra: select whole campaign suites with one expression.

``parse`` turns a ClusterShell-style expression like
``graph[chol84,ge90] x ul[0.1-0.6/0.1] x seed[0-9]`` into an ordered,
deduplicated :class:`CaseSet` of campaign cases; ``fold`` compacts any
case set back to its canonical spelling; union / intersection /
difference make "what's missing from the cache" itself a set
expression.  See :mod:`repro.caseset.grammar` for the lexical layer and
:mod:`repro.caseset.sets` for the semantics.
"""

from repro.caseset.grammar import CaseSetError
from repro.caseset.sets import (
    CaseEntry,
    CaseSet,
    GraphToken,
    Profile,
    as_caseset,
    expand,
    fold,
    parse,
)

__all__ = [
    "CaseEntry",
    "CaseSet",
    "CaseSetError",
    "GraphToken",
    "Profile",
    "as_caseset",
    "expand",
    "fold",
    "parse",
]
