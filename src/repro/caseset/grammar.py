"""Lexical layer of the case-set algebra: text ↔ terms, values ↔ ranges.

This module knows nothing about campaign cases — it turns an expression
string like ``graph[chol84,ge90] x ul[0.1-0.6/0.1] ! graph[ge90] x
ul[0.1]`` into a sequence of ``(set-op, {axis: [value, ...]})`` raw
terms, and folds plain value lists back into the compact range syntax
(``0-9``, ``0-8/2``, ``0.1-0.6/0.1``) the way ClusterShell's
``RangeSet`` folds node ranges.  The semantic layer
(:mod:`repro.caseset.sets`) interprets the axis names and values.

Grammar (whitespace is insignificant outside brackets)::

    expr     := term (op term)*
    op       := ','  (union)  |  '&'  (intersection)  |  '!'  (difference)
    term     := selector ('x' selector)*
    selector := axis '[' value (',' value)* ']'
    value    := token | int | int '-' int ['/' int]
              | float | float '-' float '/' float

Set operators associate left to right, exactly like ClusterShell's
``NodeSet`` string syntax.  Every malformed input raises
:class:`CaseSetError` with a message naming the offending fragment — the
service maps these to structured 400s, so precision here is user-facing.

Float ranges expand on an exact decimal lattice: ``0.1-0.6/0.1`` scales
start/stop/step by the largest written decimal count (here 10) and
divides back, so the values are the correctly rounded floats of
``0.1 … 0.6`` with no accumulation drift, and re-parsing a folded range
reproduces the identical floats.  Folding only emits a range after
verifying that round trip; anything irregular falls back to an explicit
comma list, so ``fold`` never changes a value set.
"""

from __future__ import annotations

import re

__all__ = [
    "CaseSetError",
    "fold_floats",
    "fold_ints",
    "format_float",
    "parse_float_values",
    "parse_int_values",
    "parse_term",
    "split_expression",
]


class CaseSetError(ValueError):
    """A case-set expression is malformed or names an impossible case."""


#: Top-level set operators, in ClusterShell ``NodeSet`` notation.
_OPS = {",": "union", "&": "intersect", "!": "difference"}

_SELECTOR_HEAD = re.compile(r"^([A-Za-z_]+)\s*\[([^\[\]]*)\]")
_INT = re.compile(r"^\d+$")
_INT_RANGE = re.compile(r"^(\d+)-(\d+)(?:/(\d+))?$")
_NUM = r"\d+(?:\.\d+)?"
_FLOAT = re.compile(rf"^{_NUM}$")
_FLOAT_RANGE = re.compile(rf"^({_NUM})-({_NUM})/({_NUM})$")


def split_expression(text: str) -> list[tuple[str, str]]:
    """Split ``text`` into ``(op, term_text)`` pairs at top-level operators.

    The first term's op is always ``"union"``; brackets shield the value
    commas from the top-level split.  Empty terms and unbalanced
    brackets are loud errors.
    """
    parts: list[tuple[str, str]] = []
    op = "union"
    depth = 0
    buf: list[str] = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise CaseSetError(f"unbalanced ']' in {text!r}")
        if depth == 0 and ch in _OPS:
            parts.append((op, "".join(buf)))
            op = _OPS[ch]
            buf = []
        else:
            buf.append(ch)
    if depth != 0:
        raise CaseSetError(f"unbalanced '[' in {text!r}")
    parts.append((op, "".join(buf)))
    for part_op, part in parts:
        if not part.strip():
            raise CaseSetError(
                f"empty term (dangling {part_op} operator?) in {text!r}"
            )
    return parts


def parse_term(text: str) -> dict[str, list[str]]:
    """Parse one product term into ``{axis: [raw value, ...]}``.

    Selectors are ``axis[v1,v2,...]`` joined by the cross operator ``x``
    (or ``*``).  Axis names are lower-cased; duplicate axes and empty
    value lists are errors.  Values are returned raw — the semantic
    layer types them per axis.
    """
    axes: dict[str, list[str]] = {}
    rest = text.strip()
    first = True
    while rest:
        if not first:
            if rest[0] in ("x", "*"):
                rest = rest[1:].lstrip()
            else:
                raise CaseSetError(
                    f"expected 'x' between selectors near {rest[:24]!r}"
                )
        match = _SELECTOR_HEAD.match(rest)
        if match is None:
            raise CaseSetError(
                f"expected an axis[value,...] selector near {rest[:24]!r}"
            )
        name = match.group(1).lower()
        body = match.group(2)
        if name in axes:
            raise CaseSetError(f"axis {name!r} appears twice in one term")
        items = [item.strip() for item in body.split(",")]
        if any(not item for item in items):
            raise CaseSetError(f"empty value in {name}[{body}]")
        axes[name] = items
        rest = rest[match.end():].lstrip()
        first = False
    if not axes:
        raise CaseSetError(f"empty term in {text!r}")
    return axes


# ---------------------------------------------------------------------- #
# integer values: "3", "0-9", "0-8/2"
# ---------------------------------------------------------------------- #


def parse_int_values(axis: str, items: list[str]) -> list[int]:
    """Expand raw integer values/ranges; deduplicates, keeps sorted order."""
    out: set[int] = set()
    for item in items:
        if _INT.match(item):
            out.add(int(item))
            continue
        match = _INT_RANGE.match(item)
        if match is None:
            raise CaseSetError(
                f"{axis} values must be integers or a-b[/step] ranges, "
                f"got {item!r}"
            )
        start, stop = int(match.group(1)), int(match.group(2))
        step = int(match.group(3) or 1)
        if step < 1:
            raise CaseSetError(f"{axis} range step must be >= 1 in {item!r}")
        if stop < start:
            raise CaseSetError(
                f"{axis} range is backwards ({start} > {stop}) in {item!r}"
            )
        out.update(range(start, stop + 1, step))
    return sorted(out)


def fold_ints(values: list[int]) -> str:
    """Fold sorted integers into compact range pieces (RangeSet style).

    Maximal arithmetic runs of length >= 3 (or adjacent pairs) become
    ``a-b[/step]``; everything else is listed.  ``parse_int_values``
    inverts this exactly.
    """
    vs = sorted(set(values))
    pieces: list[str] = []
    i = 0
    while i < len(vs):
        j = i + 1
        if j < len(vs):
            step = vs[j] - vs[i]
            while j + 1 < len(vs) and vs[j + 1] - vs[j] == step:
                j += 1
            run = j - i + 1
            if run >= 3 or (run == 2 and step == 1):
                suffix = f"/{step}" if step != 1 else ""
                pieces.append(f"{vs[i]}-{vs[j]}{suffix}")
                i = j + 1
                continue
        pieces.append(str(vs[i]))
        i += 1
    return ",".join(pieces)


# ---------------------------------------------------------------------- #
# float values: "1.1", "0.1-0.6/0.1"
# ---------------------------------------------------------------------- #


def format_float(value: float) -> str:
    """Shortest decimal rendering that parses back to the same float."""
    short = f"{value:g}"
    return short if float(short) == value else repr(value)


def _decimals(token: str) -> int:
    """Digits after the decimal point in a written number."""
    _, _, frac = token.partition(".")
    return len(frac)


def parse_float_values(axis: str, items: list[str]) -> list[float]:
    """Expand raw float values/ranges; deduplicates, keeps sorted order.

    Ranges require an explicit step (``0.1-0.6/0.1``) and expand on the
    decimal lattice of the written precision, so every value is the
    correctly rounded float of its decimal — no accumulation drift.
    """
    out: set[float] = set()
    for item in items:
        if _FLOAT.match(item):
            out.add(float(item))
            continue
        match = _FLOAT_RANGE.match(item)
        if match is None:
            raise CaseSetError(
                f"{axis} values must be numbers or start-stop/step ranges "
                f"(step required), got {item!r}"
            )
        raw_start, raw_stop, raw_step = match.groups()
        scale = 10 ** max(
            _decimals(raw_start), _decimals(raw_stop), _decimals(raw_step)
        )
        start = round(float(raw_start) * scale)
        stop = round(float(raw_stop) * scale)
        step = round(float(raw_step) * scale)
        if step < 1:
            raise CaseSetError(f"{axis} range step must be > 0 in {item!r}")
        if stop < start:
            raise CaseSetError(
                f"{axis} range is backwards ({raw_start} > {raw_stop}) "
                f"in {item!r}"
            )
        out.update(i / scale for i in range(start, stop + 1, step))
    return sorted(out)


def fold_floats(values: list[float]) -> str:
    """Fold sorted floats into ``start-stop/step`` runs where exact.

    A run is only emitted after re-parsing it and checking it reproduces
    the identical floats — fold never changes the value set, it only
    compacts the spelling.
    """
    vs = sorted(set(values))
    pieces: list[str] = []
    i = 0
    while i < len(vs):
        best: tuple[int, str] | None = None
        if i + 2 < len(vs):
            step = vs[i + 1] - vs[i]
            j = i + 1
            while j + 1 < len(vs) and abs(
                (vs[j + 1] - vs[j]) - step
            ) <= 1e-12 * max(1.0, abs(step)):
                j += 1
            if j - i + 1 >= 3:
                candidate = (
                    f"{format_float(vs[i])}-{format_float(vs[j])}"
                    f"/{format_float(step)}"
                )
                try:
                    if parse_float_values("fold", [candidate]) == vs[i:j + 1]:
                        best = (j, candidate)
                except CaseSetError:
                    best = None
        if best is not None:
            pieces.append(best[1])
            i = best[0] + 1
        else:
            pieces.append(format_float(vs[i]))
            i += 1
    return ",".join(pieces)
