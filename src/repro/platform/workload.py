"""Workloads: a task graph bound to a platform and a cost matrix.

A :class:`Workload` is the unit every scheduler and makespan-analysis engine
operates on.  It holds the *deterministic minimum* durations; uncertainty is
applied on top by a :class:`repro.stochastic.StochasticModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.cholesky import cholesky_dag
from repro.dag.gaussian_elim import gaussian_elimination_dag
from repro.dag.graph import TaskGraph
from repro.dag.random_dag import random_dag
from repro.platform.heterogeneity import cv_gamma_costs, uniform_costs
from repro.platform.platform import Platform
from repro.util.rng import as_generator, spawn_generators

__all__ = [
    "Workload",
    "random_workload",
    "cholesky_workload",
    "ge_workload",
    "lu_workload",
    "workload_for_graph",
]


@dataclass(frozen=True)
class Workload:
    """Task graph ⊗ platform ⊗ unrelated cost matrix.

    Attributes
    ----------
    graph:
        The application DAG with communication volumes.
    platform:
        Communication rate/latency matrices.
    comp:
        ``(n_tasks, m)`` matrix of *minimum* computation durations
        (the unrelated model of §II).
    """

    graph: TaskGraph
    platform: Platform
    comp: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "comp", np.asarray(self.comp, dtype=float))
        self.validate()

    def validate(self) -> None:
        """Check dimensional consistency and cost sanity."""
        n, m = self.graph.n_tasks, self.platform.m
        if self.comp.shape != (n, m):
            raise ValueError(
                f"comp matrix shape {self.comp.shape} does not match "
                f"(n_tasks={n}, m={m})"
            )
        if not np.all(np.isfinite(self.comp)) or np.any(self.comp < 0):
            raise ValueError("computation costs must be finite and ≥ 0")

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return self.graph.n_tasks

    @property
    def m(self) -> int:
        """Number of machines."""
        return self.platform.m

    # ------------------------------------------------------------------ #
    # deterministic (minimum) durations
    # ------------------------------------------------------------------ #

    def duration(self, task: int, proc: int) -> float:
        """Minimum duration of ``task`` on ``proc``."""
        return float(self.comp[task, proc])

    def comm_time(self, u: int, v: int, p: int, q: int) -> float:
        """Minimum communication time of edge ``u → v`` placed on ``(p, q)``."""
        if p == q:
            return 0.0
        return self.platform.comm_time(self.graph.volume(u, v), p, q)

    def mean_duration(self, task: int) -> float:
        """Machine-averaged minimum duration (used by rank computations)."""
        return float(self.comp[task].mean())

    def mean_durations(self) -> np.ndarray:
        """Machine-averaged minimum duration of every task."""
        return self.comp.mean(axis=1)

    def mean_comm_time(self, u: int, v: int) -> float:
        """Pair-averaged minimum communication time of edge ``u → v``.

        The average is over *distinct* processor pairs (HEFT's
        ``c̄ = L̄ + c·τ̄`` convention); 0 on a single machine.
        """
        return float(
            self.platform.mean_latency()
            + self.graph.volume(u, v) * self.platform.mean_tau()
        )


# ---------------------------------------------------------------------- #
# factories matching the paper's experimental setup (§V)
# ---------------------------------------------------------------------- #


def random_workload(
    n_tasks: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    ccr: float = 0.1,
    mu_task: float = 20.0,
    v_task: float = 0.5,
    v_mach: float = 0.5,
    max_in_degree: int | None = None,
    name: str | None = None,
) -> Workload:
    """Random layered DAG + CV-Gamma costs + unit-rate network (paper §V)."""
    gen_graph, gen_costs = spawn_generators(as_generator(rng), 2)
    graph = random_dag(
        n_tasks,
        gen_graph,
        ccr=ccr,
        mu_task=mu_task,
        v_comm=v_task,
        max_in_degree=max_in_degree,
        name=name,
    )
    comp = cv_gamma_costs(n_tasks, m, gen_costs, mu_task=mu_task, v_task=v_task, v_mach=v_mach)
    return Workload(graph, Platform.uniform(m), comp)


def workload_for_graph(
    graph: TaskGraph,
    m: int,
    rng: int | None | np.random.Generator = None,
    min_lo: float = 10.0,
    min_hi: float = 20.0,
) -> Workload:
    """Bind an existing graph to ``m`` machines with the real-app cost recipe.

    Per task: ``minVal ~ U[min_lo, min_hi]``, per-machine cost
    ``~ U[minVal, 2·minVal]`` (paper §V); unit-rate network so communication
    *weights* are communication *times*.
    """
    comp = uniform_costs(graph.n_tasks, m, rng, min_lo=min_lo, min_hi=min_hi)
    return Workload(graph, Platform.uniform(m), comp)


def cholesky_workload(
    b: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    volume: float = 2.0,
) -> Workload:
    """Tiled-Cholesky workload (paper Figures 3): ``b`` tile columns, ``m`` machines."""
    return workload_for_graph(cholesky_dag(b, volume=volume), m, rng)


def ge_workload(
    b: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    volume: float = 2.0,
) -> Workload:
    """Gaussian-elimination workload (paper Figure 5): ``b`` columns, ``m`` machines."""
    return workload_for_graph(gaussian_elimination_dag(b, volume=volume), m, rng)


def lu_workload(
    b: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    volume: float = 2.0,
) -> Workload:
    """Tiled-LU workload (extension family): ``b`` tile columns, ``m`` machines."""
    from repro.dag.lu import lu_dag

    return workload_for_graph(lu_dag(b, volume=volume), m, rng)
