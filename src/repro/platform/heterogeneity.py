"""Unrelated-machine cost matrices.

Two generators, both from the paper's §V:

* :func:`cv_gamma_costs` — the *coefficient-of-variation based* method of
  Ali, Siegel, Maheswaran, Hensgen & Ali (2000), used for the random graphs:
  each task draws a mean cost from a Gamma distribution with mean ``µ_task``
  and CV ``V_task``, then each machine's cost for that task is drawn from a
  Gamma with that mean and CV ``V_mach``.  The paper uses
  ``µ_task = 20, V_task = V_mach = 0.5``.
* :func:`uniform_costs` — the real-application recipe: each task's minimum
  duration ``minVal`` is "chosen randomly" and its per-machine cost is
  uniform on ``[minVal, 2·minVal]`` (a low degree of unrelatedness, which is
  why the paper notes the heuristics behave consistently).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator

__all__ = ["cv_gamma_costs", "uniform_costs"]


def cv_gamma_costs(
    n_tasks: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    mu_task: float = 20.0,
    v_task: float = 0.5,
    v_mach: float = 0.5,
) -> np.ndarray:
    """CV-based Gamma cost matrix (Ali et al. 2000), shape ``(n_tasks, m)``.

    ``v_task`` controls how different tasks are from each other; ``v_mach``
    controls machine heterogeneity (unrelatedness).  Either may be 0 for a
    degenerate (deterministic) axis.
    """
    if n_tasks < 1 or m < 1:
        raise ValueError("need at least one task and one machine")
    if mu_task <= 0:
        raise ValueError(f"mu_task must be positive, got {mu_task}")
    if v_task < 0 or v_mach < 0:
        raise ValueError("coefficients of variation must be ≥ 0")
    gen = as_generator(rng)
    if v_task == 0:
        task_means = np.full(n_tasks, mu_task)
    else:
        shape_t = 1.0 / (v_task * v_task)
        scale_t = mu_task * v_task * v_task
        task_means = gen.gamma(shape_t, scale_t, size=n_tasks)
    task_means = np.maximum(task_means, 1e-9)
    if v_mach == 0:
        return np.repeat(task_means[:, None], m, axis=1)
    shape_m = 1.0 / (v_mach * v_mach)
    # Gamma scale is per-task: scale = mean · v², drawn independently per machine.
    scales = task_means * (v_mach * v_mach)
    costs = gen.gamma(shape_m, 1.0, size=(n_tasks, m)) * scales[:, None]
    return np.maximum(costs, 1e-9)


def uniform_costs(
    n_tasks: int,
    m: int,
    rng: int | None | np.random.Generator = None,
    min_lo: float = 10.0,
    min_hi: float = 20.0,
) -> np.ndarray:
    """Real-application cost matrix: rows uniform on ``[minVal, 2·minVal]``.

    ``minVal`` is drawn per task, uniform on ``[min_lo, min_hi]`` (the paper
    only says "chosen randomly"; the default range keeps computation and
    communication weights on the same order, as §V requires).
    """
    if n_tasks < 1 or m < 1:
        raise ValueError("need at least one task and one machine")
    if not 0 < min_lo <= min_hi:
        raise ValueError(f"invalid minVal range [{min_lo}, {min_hi}]")
    gen = as_generator(rng)
    min_vals = gen.uniform(min_lo, min_hi, size=n_tasks)
    return gen.uniform(min_vals[:, None], 2.0 * min_vals[:, None], size=(n_tasks, m))
