"""Heterogeneous target platforms and workloads.

The paper's platform model (§II):

* ``m`` machines, *unrelated* computation model — an ``n × m`` matrix of
  minimum task durations;
* communication matrices ``τ`` (time per data element between each processor
  pair) and ``L`` (latency), with zero diagonals so same-processor
  communication is free;
* the communication time of edge ``(u, v)`` placed on processors ``(p, q)``
  is ``L[p,q] + c_uv · τ[p,q]``.

A :class:`Workload` binds a task graph, a platform and a cost matrix, and is
the unit every scheduler and analysis engine operates on.  Cost matrices are
generated either with the CV-based Gamma method of Ali et al. (random
graphs) or the paper's real-application recipe (uniform
``[minVal, 2·minVal]`` rows).
"""

from repro.platform.platform import Platform
from repro.platform.heterogeneity import cv_gamma_costs, uniform_costs
from repro.platform.workload import (
    Workload,
    cholesky_workload,
    ge_workload,
    lu_workload,
    random_workload,
    workload_for_graph,
)

__all__ = [
    "Platform",
    "cv_gamma_costs",
    "uniform_costs",
    "Workload",
    "random_workload",
    "cholesky_workload",
    "ge_workload",
    "lu_workload",
    "workload_for_graph",
]
