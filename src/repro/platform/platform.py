"""The target platform: communication rate and latency matrices."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import as_generator

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """``m`` heterogeneous machines connected by a complete network.

    Attributes
    ----------
    tau:
        ``(m, m)`` matrix; ``tau[p, q]`` is the time to send one data element
        from processor ``p`` to ``q``.  The diagonal is zero (same-processor
        communication is free).
    latency:
        ``(m, m)`` matrix of per-message latencies, zero diagonal.  The paper
        found latency's influence negligible and dropped it; the default
        platform builders therefore use zero latency, but the model keeps it
        so the full formula ``L + c·τ`` remains available.
    """

    tau: np.ndarray
    latency: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        tau = np.asarray(self.tau, dtype=float)
        object.__setattr__(self, "tau", tau)
        if self.latency is None:
            object.__setattr__(self, "latency", np.zeros_like(tau))
        else:
            object.__setattr__(self, "latency", np.asarray(self.latency, dtype=float))
        self.validate()

    @property
    def m(self) -> int:
        """Number of machines."""
        return self.tau.shape[0]

    def validate(self) -> None:
        """Check shapes, zero diagonals and non-negativity."""
        tau, lat = self.tau, self.latency
        if tau.ndim != 2 or tau.shape[0] != tau.shape[1]:
            raise ValueError(f"tau must be square, got shape {tau.shape}")
        if lat.shape != tau.shape:
            raise ValueError("latency must have the same shape as tau")
        if tau.shape[0] < 1:
            raise ValueError("platform needs at least one machine")
        for name, mat in (("tau", tau), ("latency", lat)):
            if not np.all(np.isfinite(mat)) or np.any(mat < 0):
                raise ValueError(f"{name} must be finite and non-negative")
            if np.any(np.diagonal(mat) != 0):
                raise ValueError(f"{name} must have a zero diagonal")

    def comm_time(self, volume: float, p: int, q: int) -> float:
        """Minimum communication time of ``volume`` elements from ``p`` to ``q``."""
        if p == q:
            return 0.0
        return float(self.latency[p, q] + volume * self.tau[p, q])

    def mean_tau(self) -> float:
        """Average rate over distinct processor pairs (0 for one machine)."""
        m = self.m
        if m < 2:
            return 0.0
        off_diag = self.tau.sum() / (m * (m - 1))
        return float(off_diag)

    def mean_latency(self) -> float:
        """Average latency over distinct processor pairs."""
        m = self.m
        if m < 2:
            return 0.0
        return float(self.latency.sum() / (m * (m - 1)))

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #

    @classmethod
    def uniform(cls, m: int, tau: float = 1.0, latency: float = 0.0) -> "Platform":
        """Homogeneous network: every distinct pair has the same τ and L.

        This matches the paper's real-application setting where "only the
        weight of communications is considered (not the bandwidth)".
        """
        if m < 1:
            raise ValueError(f"need at least one machine, got {m}")
        t = np.full((m, m), float(tau))
        np.fill_diagonal(t, 0.0)
        l = np.full((m, m), float(latency))
        np.fill_diagonal(l, 0.0)
        return cls(t, l)

    @classmethod
    def heterogeneous(
        cls,
        m: int,
        rng: int | None | np.random.Generator = None,
        tau_mean: float = 1.0,
        tau_spread: float = 0.5,
        latency: float = 0.0,
    ) -> "Platform":
        """Random network: τ entries uniform in ``tau_mean · [1−s, 1+s]``.

        ``tau_spread`` must lie in ``[0, 1)``; the matrix is kept symmetric
        (links are bidirectional with equal speed).
        """
        if not 0.0 <= tau_spread < 1.0:
            raise ValueError(f"tau_spread must be in [0, 1), got {tau_spread}")
        gen = as_generator(rng)
        t = tau_mean * (1.0 + tau_spread * (2.0 * gen.random((m, m)) - 1.0))
        t = 0.5 * (t + t.T)
        np.fill_diagonal(t, 0.0)
        l = np.full((m, m), float(latency))
        np.fill_diagonal(l, 0.0)
        return cls(t, l)
