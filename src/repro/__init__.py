"""repro — reproduction of Canon & Jeannot, *A Comparison of Robustness
Metrics for Scheduling DAGs on Heterogeneous Systems* (HeteroPar/CLUSTER 2007).

The public API re-exports the main entry points of each subsystem:

* task graphs and workloads (:mod:`repro.dag`, :mod:`repro.platform`),
* the uncertainty model and numeric random variables (:mod:`repro.stochastic`),
* schedulers (:mod:`repro.schedule`),
* makespan-distribution engines (:mod:`repro.analysis`),
* robustness metrics and correlation studies (:mod:`repro.core`),
* the paper's experiment harness (:mod:`repro.experiments`).

Quickstart::

    import repro

    workload = repro.cholesky_workload(b=3, m=3, rng=0)
    model = repro.StochasticModel(ul=1.1)
    schedule = repro.heft(workload)
    makespan_rv = repro.classical_makespan(schedule, model)
    metrics = repro.evaluate_schedule(schedule, model)
"""

from repro.dag import (
    TaskGraph,
    chain_dag,
    cholesky_dag,
    fork_dag,
    fork_join_dag,
    gaussian_elimination_dag,
    join_dag,
    random_dag,
)
from repro.platform import (
    Platform,
    Workload,
    cholesky_workload,
    ge_workload,
    random_workload,
    workload_for_graph,
)
from repro.stochastic import (
    NormalRV,
    NumericRV,
    StochasticModel,
    beta_rv,
    gamma_rv,
    point_rv,
    special_rv,
    uniform_rv,
)
from repro.schedule import (
    Schedule,
    bil,
    bmct,
    cpop,
    greedy_eft,
    heft,
    random_schedule,
    random_schedules,
    sigma_heft,
)
from repro.analysis import (
    classical_makespan,
    cm_distance,
    dodin_makespan,
    empirical_cdf,
    ks_distance,
    sample_makespans,
    spelde_makespan,
)
from repro.core import (
    METRIC_NAMES,
    CaseResult,
    MetricPanel,
    RobustnessMetrics,
    evaluate_case,
    evaluate_schedule,
    slack_analysis,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # dag
    "TaskGraph",
    "random_dag",
    "cholesky_dag",
    "gaussian_elimination_dag",
    "chain_dag",
    "fork_dag",
    "join_dag",
    "fork_join_dag",
    # platform
    "Platform",
    "Workload",
    "random_workload",
    "cholesky_workload",
    "ge_workload",
    "workload_for_graph",
    # stochastic
    "NumericRV",
    "NormalRV",
    "StochasticModel",
    "beta_rv",
    "gamma_rv",
    "uniform_rv",
    "point_rv",
    "special_rv",
    # schedule
    "Schedule",
    "random_schedule",
    "random_schedules",
    "heft",
    "bil",
    "bmct",
    "cpop",
    "greedy_eft",
    "sigma_heft",
    # analysis
    "classical_makespan",
    "dodin_makespan",
    "spelde_makespan",
    "sample_makespans",
    "empirical_cdf",
    "ks_distance",
    "cm_distance",
    # core
    "METRIC_NAMES",
    "RobustnessMetrics",
    "MetricPanel",
    "CaseResult",
    "evaluate_schedule",
    "evaluate_case",
    "slack_analysis",
]
