"""``reprolint`` — the repo's invariant linter (engine + CLI).

Usage::

    python -m repro.devtools.lint [paths...]
        [--format=text|json] [--baseline FILE] [--update-baseline]
        [--explain RLxxx] [--list-rules]

The engine parses every ``.py`` file under the given paths (default:
``src``) with :mod:`ast`, runs the module rules from
:mod:`repro.devtools.rules` on each, then the project rules (oracle
coverage) once per repository root, filters per-line
``# reprolint: ignore[RLxxx]`` pragmas, and fingerprints the survivors
for baseline matching (:mod:`repro.devtools.baseline`).

Exit status: ``0`` when every finding is baseline-accepted, ``1`` when
any *new* finding exists, ``2`` on usage errors.  The JSON report
(``--format=json``, schema ``reprolint-report-v1``) is emitted through
:func:`repro.io.json_io.canonical_json`, so report bytes are stable for
machine consumers and CI diffing.
"""

from __future__ import annotations

import argparse
import ast
import inspect
import pathlib
import re
import sys
from dataclasses import dataclass

from repro.devtools.baseline import Baseline, BaselineDelta, fingerprint_findings
from repro.devtools.rules import (
    MODULE_RULES,
    PROJECT_RULES,
    Finding,
    ModuleContext,
    all_rules,
    rule_by_id,
)
from repro.io.json_io import canonical_json

__all__ = ["LintResult", "lint_paths", "main"]

_REPORT_FORMAT = "reprolint-report-v1"
_PRAGMA = re.compile(r"#\s*reprolint:\s*ignore\[([A-Za-z0-9,\s]+)\]")


@dataclass
class LintResult:
    """Everything one lint run produced (pre-baseline)."""

    findings: "list[Finding]"
    files: int
    suppressed: int


def _split_repo(path: pathlib.Path) -> "tuple[pathlib.Path, str] | None":
    """``(repo_root, package_rel)`` when ``path`` sits under ``src/repro``."""
    parts = path.parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            root = pathlib.Path(*parts[:i]) if i else pathlib.Path(path.anchor)
            return root, "/".join(parts[i + 2 :])
    return None


def _collect(paths: "list[pathlib.Path]") -> "list[pathlib.Path]":
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: list[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    unique: dict[pathlib.Path, None] = {}
    for path in files:
        unique.setdefault(path.resolve(), None)
    return list(unique)


def _display(path: pathlib.Path, root: "pathlib.Path | None") -> str:
    """Stable report path: repo-root-relative when possible."""
    for base in (root, pathlib.Path.cwd()):
        if base is None:
            continue
        try:
            return path.relative_to(base).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def _apply_pragmas(
    findings: "list[Finding]", lines: "list[str]"
) -> "tuple[list[Finding], int]":
    """Drop findings whose source line carries a matching ignore pragma."""
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if 1 <= finding.line <= len(lines):
            match = _PRAGMA.search(lines[finding.line - 1])
            if match is not None:
                rules = {
                    r.strip().upper() for r in match.group(1).split(",")
                }
                if finding.rule in rules:
                    suppressed += 1
                    continue
        kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: "list[pathlib.Path | str]",
    project_root: "pathlib.Path | None" = None,
) -> LintResult:
    """Run every applicable rule over ``paths``; returns fingerprinted findings.

    ``project_root`` overrides repo-root discovery for the project rules
    (fixture suites lint miniature ``src/repro`` trees under tmp dirs);
    by default each root is derived from the linted files' ``src/repro``
    ancestry, so ``reprolint src/`` from a checkout just works.
    """
    files = _collect([pathlib.Path(p) for p in paths])
    findings: list[Finding] = []
    sources: dict[str, list[str]] = {}
    suppressed = 0
    roots: dict[pathlib.Path, None] = {}
    for path in files:
        split = _split_repo(path)
        root, rel = (split if split else (None, None))
        if root is not None:
            roots.setdefault(root, None)
        try:
            source = path.read_text()
            tree = ast.parse(source)
        except (OSError, SyntaxError) as exc:
            findings.append(
                Finding(
                    path=_display(path, root),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=1,
                    rule="RL000",
                    message=f"could not parse: {exc}",
                )
            )
            continue
        ctx = ModuleContext(
            path=path,
            display=_display(path, root),
            rel=rel,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        sources[ctx.display] = ctx.lines
        module_findings: list[Finding] = []
        for rule_cls in MODULE_RULES:
            if rule_cls.applies(ctx):
                module_findings.extend(rule_cls(ctx).run())
        kept, dropped = _apply_pragmas(module_findings, ctx.lines)
        findings.extend(kept)
        suppressed += dropped
    if project_root is not None:
        roots = {project_root: None}
    for root in roots:
        for project_rule in PROJECT_RULES:
            findings.extend(project_rule.run_project(root))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=fingerprint_findings(findings, sources),
        files=len(files),
        suppressed=suppressed,
    )


def _report_json(
    result: LintResult, delta: BaselineDelta
) -> str:
    """Canonical-JSON report (schema ``reprolint-report-v1``)."""
    payload = {
        "format": _REPORT_FORMAT,
        "files": result.files,
        "suppressed": result.suppressed,
        "findings": [f.to_payload() for f in result.findings],
        "new": sorted(f.fingerprint for f in delta.new),
        "baselined": sorted(f.fingerprint for f in delta.matched),
        "expired": list(delta.expired),
        "summary": {
            "total": len(result.findings),
            "new": len(delta.new),
            "baselined": len(delta.matched),
            "expired": len(delta.expired),
        },
    }
    return canonical_json(payload)


def _report_text(result: LintResult, delta: BaselineDelta) -> str:
    """Human-readable report: one line per new finding, then a summary."""
    out: list[str] = []
    for finding in delta.new:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    for entry in delta.expired:
        out.append(
            f"baseline entry expired ({entry['rule']} {entry['path']} "
            f"{entry['fingerprint']}): re-run with --update-baseline"
        )
    out.append(
        f"reprolint: {result.files} file(s), "
        f"{len(result.findings)} finding(s) "
        f"({len(delta.new)} new, {len(delta.matched)} baselined, "
        f"{len(delta.expired)} expired, {result.suppressed} suppressed)"
    )
    return "\n".join(out)


def _explain(rule_id: str) -> int:
    """Print a rule's documentation page; 2 when the ID is unknown."""
    rule = rule_by_id(rule_id)
    if rule is None:
        known = ", ".join(r.id for r in all_rules())
        print(
            f"reprolint: unknown rule {rule_id!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id} — {rule.title}\n")
    print(inspect.cleandoc(rule.__doc__ or "(undocumented)"))
    return 0


def _list_rules() -> int:
    """Print the registry: one ``RLxxx  title`` line per rule."""
    for rule in all_rules():
        print(f"{rule.id}  {rule.title}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based checker for this repo's correctness contracts "
            "(atomic writes, canonical JSON, determinism seams, "
            "TOCTOU-safe scans, oracle coverage, abort handling)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is canonical_json, schema "
        "reprolint-report-v1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings file; only findings absent from it fail",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to accept exactly the current findings",
    )
    parser.add_argument(
        "--explain",
        metavar="RLxxx",
        help="print one rule's documentation and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule ID and title, then exit",
    )
    args = parser.parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")
    result = lint_paths(args.paths)
    baseline = Baseline.load(args.baseline) if args.baseline else Baseline()
    if args.update_baseline:
        Baseline.write(args.baseline, result.findings)
        print(
            f"reprolint: baseline {args.baseline} now accepts "
            f"{len(result.findings)} finding(s)"
        )
        return 0
    delta = baseline.compare(result.findings)
    if args.format == "json":
        print(_report_json(result, delta))
    else:
        print(_report_text(result, delta))
    return 1 if delta.new else 0


if __name__ == "__main__":
    raise SystemExit(main())
