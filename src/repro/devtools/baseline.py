"""Reprolint baselines: accepted findings that don't block CI.

A baseline is a checked-in JSON file listing the *accepted* findings —
violations that predate a rule or are deliberately frozen (the v1 cache
envelope's ``json.dumps``).  CI runs ``reprolint --baseline`` and fails
only on findings *not* in the file, so the tree ratchets toward clean
without a flag-day rewrite.

Entries are keyed by **fingerprint**, not line number: a SHA-256 over
``path | rule | normalized source line | occurrence index``, so a
finding keeps matching its baseline entry when unrelated edits shift it
down the file, and expires the moment the offending line itself changes
or disappears.  Expired entries are reported (and pruned by
``--update-baseline``) so the baseline never accretes dead weight.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass

from repro.devtools.rules import Finding
from repro.io.json_io import canonical_json

__all__ = ["Baseline", "BaselineDelta", "fingerprint_findings"]

_FORMAT = "reprolint-baseline-v1"


def _normalize(snippet: str) -> str:
    """Whitespace-insensitive form of a source line."""
    return " ".join(snippet.split())


def fingerprint_findings(
    findings: "list[Finding]", sources: "dict[str, list[str]]"
) -> "list[Finding]":
    """Return ``findings`` with line-drift-resilient fingerprints filled.

    ``sources`` maps display paths to source lines.  Two findings of the
    same rule on identical source lines in one file are disambiguated by
    occurrence index (first-to-last), so duplicated violations don't
    collapse into one baseline entry.  Project-rule findings (no source
    on hand) fingerprint over the message instead of the line.
    """

    seen: dict[tuple, int] = {}
    out: list[Finding] = []
    for finding in findings:
        lines = sources.get(finding.path)
        if lines is not None and 1 <= finding.line <= len(lines):
            snippet = _normalize(lines[finding.line - 1])
        else:
            snippet = _normalize(finding.message)
        key = (finding.path, finding.rule, snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            f"{finding.path}|{finding.rule}|{snippet}|{occurrence}".encode()
        ).hexdigest()[:20]
        out.append(
            Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule=finding.rule,
                message=finding.message,
                fingerprint=digest,
            )
        )
    return out


@dataclass(frozen=True)
class BaselineDelta:
    """Result of comparing current findings against a baseline."""

    new: "tuple[Finding, ...]"
    matched: "tuple[Finding, ...]"
    expired: "tuple[dict, ...]"


class Baseline:
    """An accepted-findings file (load / compare / rewrite)."""

    def __init__(self, entries: "list[dict] | None" = None):
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: "pathlib.Path | str") -> "Baseline":
        """Parse a baseline file; a missing file is an empty baseline."""
        path = pathlib.Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return cls()
        if payload.get("format") != _FORMAT:
            raise ValueError(f"{path} is not a {_FORMAT} file")
        return cls(list(payload.get("entries", [])))

    def fingerprints(self) -> "set[str]":
        """The set of accepted fingerprints."""
        return {entry["fingerprint"] for entry in self.entries}

    def compare(self, findings: "list[Finding]") -> BaselineDelta:
        """Split ``findings`` into new vs. matched; report stale entries."""
        accepted = self.fingerprints()
        new = tuple(f for f in findings if f.fingerprint not in accepted)
        matched = tuple(f for f in findings if f.fingerprint in accepted)
        current = {f.fingerprint for f in findings}
        expired = tuple(
            entry
            for entry in self.entries
            if entry["fingerprint"] not in current
        )
        return BaselineDelta(new=new, matched=matched, expired=expired)

    @staticmethod
    def payload_for(findings: "list[Finding]") -> dict:
        """Baseline file payload accepting exactly ``findings``."""
        return {
            "format": _FORMAT,
            "entries": [
                {
                    "fingerprint": f.fingerprint,
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                }
                for f in sorted(
                    findings, key=lambda f: (f.path, f.rule, f.fingerprint)
                )
            ],
        }

    @classmethod
    def write(
        cls, path: "pathlib.Path | str", findings: "list[Finding]"
    ) -> None:
        """Rewrite ``path`` to accept exactly ``findings``."""
        pathlib.Path(path).write_text(
            canonical_json(cls.payload_for(findings)) + "\n"
        )
