"""The ``reprolint`` rule registry: one visitor class per invariant.

Each rule enforces one of the repo's correctness contracts (catalogued
in ``docs/invariants.md``).  A rule is a small :class:`ast.NodeVisitor`
with a stable ID (``RL001``–``RL006``), a class docstring that doubles
as its ``reprolint --explain`` page, and an :meth:`Rule.applies` filter
that scopes it to the package paths where the contract holds.  Files
that are *not* part of the ``repro`` package (test fixtures, scratch
snippets) get every module rule, which is what lets the fixture suite
under ``tests/devtools/`` exercise each rule with standalone files.

Two rule shapes exist:

* **module rules** (:class:`Rule`) — visit one parsed module and emit
  :class:`Finding` objects against its source;
* **project rules** (:class:`ProjectRule`, today only RL005) — run once
  per lint invocation against the repository root, cross-referencing
  kernels, oracles and test modules.

Suppression is per-line and explicit: ``# reprolint: ignore[RL003]``
on the flagged line, with a reason encouraged in the trailing comment.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "MODULE_RULES",
    "PROJECT_RULES",
    "ProjectRule",
    "Rule",
    "all_rules",
    "rule_by_id",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repository-relative POSIX (or the path as given for
    files outside the repo); ``fingerprint`` is filled by the engine
    (line-drift-resilient content hash, see :mod:`repro.devtools.lint`)
    after pragma filtering.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fingerprint: str = ""

    def to_payload(self) -> dict:
        """JSON-compatible dict (schema ``reprolint-report-v1``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleContext:
    """Everything a module rule may inspect about one source file."""

    path: pathlib.Path
    display: str
    rel: "str | None"
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)
    _parents: "dict[int, ast.AST] | None" = None

    def parent_of(self, node: ast.AST) -> "ast.AST | None":
        """AST parent of ``node`` (parent map built lazily, once)."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        up = self.parent_of(node)
        while up is not None:
            yield up
            up = self.parent_of(up)


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule(ast.NodeVisitor):
    """Base class for module-scoped reprolint rules."""

    id = "RL000"
    title = "abstract rule"

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx``'s file (path-scoped)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s location."""
        self.findings.append(
            Finding(
                path=self.ctx.display,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.id,
                message=message,
            )
        )

    def run(self) -> "list[Finding]":
        """Visit the module tree; returns the findings."""
        self.visit(self.ctx.tree)
        return self.findings


class ProjectRule:
    """Base class for rules that inspect the whole repository once."""

    id = "RL000"
    title = "abstract project rule"

    @classmethod
    def run_project(cls, root: pathlib.Path) -> "list[Finding]":
        """Run against the repo rooted at ``root`` (contains ``src/repro``)."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# RL001
# --------------------------------------------------------------------- #


class AtomicWriteRule(Rule):
    """RL001 — durable writes must flow through ``io.atomic.write_atomic``.

    Under ``campaign/``, ``service/`` and ``caseset/``, any write-mode
    builtin ``open`` (mode containing ``w``/``a``/``x``) or
    ``Path.write_text`` / ``Path.write_bytes`` call is a finding: a
    direct write can be torn by a kill and observed half-written by a
    concurrent reader.  The blessed sink is
    :func:`repro.io.atomic.write_atomic`, which stages to a pid-suffixed
    temp file and publishes with ``os.replace`` so readers see old bytes
    or new bytes, never a mix.  ``os.open`` with ``O_CREAT | O_EXCL``
    (the queue's claim files) is intentionally out of scope — exclusive
    creation is its own atomicity protocol.  Suppress deliberate
    non-artifact streams (e.g. worker log files) with
    ``# reprolint: ignore[RL001]`` and a reason.
    """

    id = "RL001"
    title = "write-mode open outside the atomic-write helper"
    _WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        if ctx.rel is None:
            return True
        return ctx.rel.startswith(("campaign/", "service/", "caseset/"))

    def _mode(self, node: ast.Call) -> "str | None":
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    return kw.value.value
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            if isinstance(node.args[1].value, str):
                return node.args[1].value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._mode(node)
            if mode is not None and set(mode) & set("wax"):
                self.report(
                    node,
                    f"open(..., {mode!r}) bypasses atomic-write discipline;"
                    " route durable writes through"
                    " repro.io.atomic.write_atomic",
                )
        elif isinstance(func, ast.Attribute) and func.attr in self._WRITE_ATTRS:
            self.report(
                node,
                f".{func.attr}(...) bypasses atomic-write discipline;"
                " route durable writes through repro.io.atomic.write_atomic",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# RL002
# --------------------------------------------------------------------- #


class CanonicalJsonRule(Rule):
    """RL002 — serialize through ``io.json_io.canonical_json`` only.

    Artifact digests, cache keys, HTTP payloads and queue records are
    byte-compared across processes and machines, so every serialization
    must produce identical bytes for identical payloads.
    ``json.dumps`` with default settings is *not* canonical (dict
    insertion order leaks through), so any ``json.dump``/``json.dumps``
    call outside ``io/json_io.py`` is a finding — call
    :func:`repro.io.json_io.canonical_json` instead.  Reading
    (``json.load(s)``) is always fine.  Frozen on-disk byte formats that
    predate the rule (the v1 cache envelope) are carried in the checked-
    in baseline rather than rewritten, because changing their bytes
    would invalidate every existing artifact hash.
    """

    id = "RL002"
    title = "json.dump(s) outside io/json_io.py"

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        return ctx.rel != "io/json_io.py"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("dump", "dumps")
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ):
            self.report(
                node,
                f"json.{func.attr}(...) is not canonical; serialize via"
                " repro.io.json_io.canonical_json so byte-identity holds",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# RL003
# --------------------------------------------------------------------- #


class DeterminismSeamRule(Rule):
    """RL003 — randomness and wall-clock reads stay behind blessed seams.

    Campaign results are reproduced bit-for-bit from per-case derived
    seeds (``util/rng.py``: ``as_generator`` / ``spawn_generators`` over
    ``SeedSequence`` chains), so any ambient entropy or wall-clock read
    in library code silently breaks identity.  Findings: ``random.*``
    module calls, ``np.random.*`` / ``numpy.random.*`` calls (except
    explicitly seeded ``default_rng(seed)`` / ``SeedSequence(seed)``,
    which are the derivation primitives), zero-argument
    ``default_rng()`` (fresh OS entropy) anywhere, ``time.time()`` and
    ``datetime.now/utcnow/today``.  Monotonic clocks
    (``time.monotonic``, ``time.perf_counter``) are fine — they never
    enter artifacts.  ``util/rng.py`` and ``benchmarks/`` are out of
    scope; legitimate wall-clock reads (file-mtime lease arithmetic in
    the queue) carry ``# reprolint: ignore[RL003]`` with a reason.
    """

    id = "RL003"
    title = "ambient randomness or wall-clock outside util/rng.py"
    _CLOCKS = frozenset(
        {
            "time.time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
            "date.today",
        }
    )
    _SEEDED_OK = frozenset({"default_rng", "SeedSequence"})

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        if "benchmarks" in ctx.path.parts:
            return False
        if ctx.rel is None:
            return True
        return not ctx.rel.startswith("util/rng")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) > 1:
                self.report(
                    node,
                    f"{dotted}(...) draws from the ambient global RNG;"
                    " derive a generator via repro.util.rng instead",
                )
            elif (
                parts[0] in ("np", "numpy")
                and len(parts) >= 3
                and parts[1] == "random"
                and not (parts[-1] in self._SEEDED_OK and node.args)
            ):
                self.report(
                    node,
                    f"{dotted}(...) is an un-derived RNG entry point;"
                    " derive a generator via repro.util.rng instead",
                )
            elif dotted in self._CLOCKS:
                self.report(
                    node,
                    f"{dotted}() reads the wall clock; results must not"
                    " depend on when they were computed (use monotonic"
                    " clocks for intervals)",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "default_rng"
            and not node.args
            and not node.keywords
        ):
            self.report(
                node,
                "default_rng() without a seed pulls fresh OS entropy;"
                " derive the seed through repro.util.rng",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# RL004
# --------------------------------------------------------------------- #


class ToctouScanRule(Rule):
    """RL004 — directory scans must tolerate files vanishing mid-scan.

    Queue and cache directories are mutated concurrently: a claim can be
    retired, a task completed, or a temp file replaced between the
    moment a scan lists an entry and the moment the loop body touches
    it.  A ``for`` loop iterating a directory scan (``iterdir``,
    ``glob``, ``rglob``, ``os.listdir``, ``os.scandir`` — directly or
    through a variable assigned from one) whose body ``stat``\\ s,
    reads, opens or unlinks entries without a ``FileNotFoundError`` /
    ``OSError`` handler around the access is a finding: the scan result
    is already stale when the body runs (classic TOCTOU), so every
    per-entry access must treat "vanished" as a normal outcome, not an
    exception.  The fix is a ``try/except FileNotFoundError`` (or
    ``OSError``) with ``continue``-style tolerance per entry.
    """

    id = "RL004"
    title = "unguarded per-entry access in a directory-scan loop"
    _SCAN_ATTRS = frozenset(
        {"iterdir", "glob", "rglob", "scandir", "listdir"}
    )
    _RISKY_ATTRS = frozenset(
        {"stat", "read_text", "read_bytes", "unlink", "lstat"}
    )
    _TOLERANT = frozenset(
        {
            "FileNotFoundError",
            "OSError",
            "IOError",
            "EnvironmentError",
            "Exception",
            "BaseException",
        }
    )

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        if ctx.rel is None:
            return True
        return ctx.rel.startswith(("campaign/", "service/"))

    def _is_scan_expr(self, expr: ast.AST, scan_names: "set[str]") -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ):
                if sub.func.attr in self._SCAN_ATTRS:
                    return True
            elif isinstance(sub, ast.Name) and sub.id in scan_names:
                return True
        return False

    def _handler_tolerates(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in self._TOLERANT:
                return True
        return False

    def _protected(self, node: ast.AST, stop: ast.AST) -> bool:
        for up in self.ctx.ancestors(node):
            if isinstance(up, ast.Try) and any(
                self._handler_tolerates(h) for h in up.handlers
            ):
                return True
            if up is stop:
                return False
        return False

    def _risky_calls(self, loop: ast.For) -> Iterator[ast.Call]:
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._RISKY_ATTRS
                ):
                    yield sub
                elif isinstance(func, ast.Name) and func.id == "open":
                    yield sub

    def _check_scope(self, scope: ast.AST) -> None:
        scan_names: set[str] = set()
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Assign) and self._is_scan_expr(
                sub.value, set()
            ):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        scan_names.add(target.id)
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.For):
                continue
            if not self._is_scan_expr(sub.iter, scan_names):
                continue
            for risky in self._risky_calls(sub):
                if not self._protected(risky, scope):
                    attr = (
                        risky.func.attr
                        if isinstance(risky.func, ast.Attribute)
                        else "open"
                    )
                    self.report(
                        risky,
                        f".{attr}(...) on a scanned directory entry with no"
                        " FileNotFoundError tolerance; entries can vanish"
                        " between the scan and the access (TOCTOU)",
                    )

    def run(self) -> "list[Finding]":
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(node)
        return self.findings


# --------------------------------------------------------------------- #
# RL005
# --------------------------------------------------------------------- #


class OracleCoverageRule(ProjectRule):
    """RL005 — every public kernel keeps a frozen bit-identity oracle.

    The vectorized kernels (``schedule/_kernel.py``,
    ``stochastic/batch.py``) were ported from straightforward loop code
    that is frozen as ``_reference.py`` modules; bit-identity test
    modules (``test_*identity*``, ``test_*equivalence*``,
    ``test_*reference*``, ``test_*oracle*``) assert the port equals the
    oracle operation-for-operation.  Two findings keep that pairing
    honest as kernels evolve: (a) a public kernel name (module
    ``__all__``) that appears in no oracle test module and has no
    ``<name>_reference`` counterpart — an unpaired kernel; (b) a
    ``*_reference`` oracle exported by a ``_reference.py`` whose name
    appears in no oracle test module — a frozen oracle nobody compares
    against.  New kernels must land with both the frozen reference and
    the test that pins them together.
    """

    id = "RL005"
    title = "public kernel without a bit-identity oracle test"
    _KERNEL_MODULES = ("schedule/_kernel.py", "stochastic/batch.py")
    _ORACLE_HINTS = ("identity", "equivalence", "reference", "oracle")

    @classmethod
    def _module_all(cls, path: pathlib.Path) -> "list[tuple[str, int]]":
        try:
            tree = ast.parse(path.read_text())
        except (OSError, SyntaxError):
            return []
        exported: list[str] = []
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    exported = [
                        e.value
                        for e in node.value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                    ]
        lines = {}
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                lines[node.name] = node.lineno
        return [(name, lines.get(name, 1)) for name in exported]

    @classmethod
    def _oracle_corpus(cls, root: pathlib.Path) -> str:
        chunks: list[str] = []
        tests = root / "tests"
        if tests.is_dir():
            for path in sorted(tests.rglob("test_*.py")):
                if any(h in path.name for h in cls._ORACLE_HINTS):
                    try:
                        chunks.append(path.read_text())
                    except OSError:
                        continue
        return "\n".join(chunks)

    @classmethod
    def run_project(cls, root: pathlib.Path) -> "list[Finding]":
        pkg = root / "src" / "repro"
        if not pkg.is_dir():
            return []
        corpus = cls._oracle_corpus(root)
        findings: list[Finding] = []

        def covered(name: str) -> bool:
            return re.search(rf"\b{re.escape(name)}\b", corpus) is not None

        for rel in cls._KERNEL_MODULES:
            module = pkg / rel
            if not module.is_file():
                continue
            reference = module.with_name("_reference.py")
            ref_names = {n for n, _ in cls._module_all(reference)}
            for name, line in cls._module_all(module):
                if f"{name}_reference" in ref_names or covered(name):
                    continue
                findings.append(
                    Finding(
                        path=f"src/repro/{rel}",
                        line=line,
                        col=1,
                        rule=cls.id,
                        message=(
                            f"public kernel {name!r} has no frozen"
                            " _reference counterpart and appears in no"
                            " bit-identity test module"
                        ),
                    )
                )
        for reference in sorted(pkg.rglob("_reference.py")):
            rel_path = reference.relative_to(root).as_posix()
            for name, line in cls._module_all(reference):
                if not covered(name):
                    findings.append(
                        Finding(
                            path=rel_path,
                            line=line,
                            col=1,
                            rule=cls.id,
                            message=(
                                f"frozen oracle {name!r} appears in no"
                                " bit-identity test module; nothing pins"
                                " the kernel to it"
                            ),
                        )
                    )
        return findings


# --------------------------------------------------------------------- #
# RL006
# --------------------------------------------------------------------- #


class SwallowedAbortRule(Rule):
    """RL006 — worker loops must not swallow ``ShardAbort`` broadly.

    The queue protocol signals lease loss by raising ``ShardAbort`` out
    of the progress callback; a worker that catches it with a bare
    ``except:`` or ``except Exception:`` inside its polling loop keeps
    computing a shard it no longer owns — wasted work at best, duplicate
    completion races at worst.  Inside ``while``/``for`` loops in
    ``campaign/queue.py`` and ``service/``, a broad handler is a finding
    unless (a) an earlier handler of the same ``try`` catches
    ``ShardAbort`` explicitly (so the abort never reaches the broad
    arm), or (b) the handler re-raises with a bare ``raise``.  Broad
    handlers *outside* loops (top-level task crash reporting) are fine —
    they run once and terminate the attempt rather than looping past the
    signal.
    """

    id = "RL006"
    title = "broad except inside a worker loop can eat ShardAbort"

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        if ctx.rel is None:
            return True
        return ctx.rel == "campaign/queue.py" or ctx.rel.startswith(
            "service/"
        )

    @staticmethod
    def _names(handler: ast.ExceptHandler) -> "list[str]":
        if handler.type is None:
            return []
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        out = []
        for node in nodes:
            dotted = _dotted(node)
            if dotted is not None:
                out.append(dotted.rsplit(".", 1)[-1])
        return out

    def _in_loop(self, node: ast.AST) -> bool:
        for up in self.ctx.ancestors(node):
            if isinstance(up, (ast.For, ast.While)):
                return True
            if isinstance(up, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    def visit_Try(self, node: ast.Try) -> None:
        abort_handled = False
        for handler in node.handlers:
            names = self._names(handler)
            if "ShardAbort" in names:
                abort_handled = True
                continue
            broad = handler.type is None or any(
                n in ("Exception", "BaseException") for n in names
            )
            if not broad or abort_handled or not self._in_loop(node):
                continue
            reraises = any(
                isinstance(sub, ast.Raise) and sub.exc is None
                for sub in ast.walk(handler)
            )
            if not reraises:
                label = "bare except" if handler.type is None else (
                    "except " + "/".join(names)
                )
                self.report(
                    handler,
                    f"{label} inside a worker loop can swallow ShardAbort;"
                    " handle ShardAbort first or re-raise",
                )
        self.generic_visit(node)


MODULE_RULES: "tuple[type[Rule], ...]" = (
    AtomicWriteRule,
    CanonicalJsonRule,
    DeterminismSeamRule,
    ToctouScanRule,
    SwallowedAbortRule,
)

PROJECT_RULES: "tuple[type[ProjectRule], ...]" = (OracleCoverageRule,)


def all_rules() -> "list[type]":
    """Every rule class, sorted by rule ID."""
    return sorted(
        [*MODULE_RULES, *PROJECT_RULES], key=lambda rule: rule.id
    )


def rule_by_id(rule_id: str) -> "type | None":
    """Look up a rule class by its ``RLxxx`` ID (case-insensitive)."""
    wanted = rule_id.strip().upper()
    for rule in all_rules():
        if rule.id == wanted:
            return rule
    return None
