"""Developer tooling: ``reprolint``, the repo's invariant linter.

Nine PRs of byte-identity guarantees rest on conventions — atomic
tmp+\\ ``os.replace`` writes, canonical JSON serialization, per-case
derived RNG seeds, TOCTOU-tolerant directory scans, frozen
``_reference`` oracles, abort-signal hygiene in worker loops.  This
package checks them mechanically: ``python -m repro.devtools.lint``
parses the tree with :mod:`ast` and runs the rule registry
(``RL001``–``RL006``, see :mod:`repro.devtools.rules`), comparing
findings against a checked-in baseline so new violations fail CI while
accepted ones don't.  ``docs/invariants.md`` catalogues the contracts;
``reprolint --explain RLxxx`` renders each rule's page.
"""

from repro.devtools.baseline import Baseline, fingerprint_findings
from repro.devtools.rules import Finding, all_rules, rule_by_id

# NOTE: repro.devtools.lint is deliberately not imported here — importing
# it from the package __init__ would shadow ``python -m
# repro.devtools.lint`` with a runpy double-import warning.

__all__ = [
    "Baseline",
    "Finding",
    "all_rules",
    "fingerprint_findings",
    "rule_by_id",
]
