"""Figure 9 — slack and robustness are independent axes.

The paper sketches four schedules of a join graph (N branch tasks feeding a
sink) covering every combination of {much slack, no slack} × {robust,
non-robust}, to argue that the slack metric does *not* measure robustness:

* (a) **slack-rich & robust** — every branch on its own processor; the sink
  waits for the *maximum* of many i.i.d.-ish finish times, which
  concentrates (the max of many independent variables tends to a constant),
  while all non-critical branches carry slack;
* (b) **slack-free & robust** — branches packed into a few balanced chains;
  every processor is busy until the join (no slack) and each chain is a
  *sum* whose relative dispersion shrinks by the CLT;
* (c) **slack-free & non-robust** — everything serialized on one processor:
  zero slack, and the makespan variance is the full sum of variances;
* (d) **slack-rich & non-robust** — one long serial chain plus one processor
  running a single branch: huge slack on the idle side, same variance as (c).

We build the four schedules explicitly (heterogeneous branch durations so
slack is non-degenerate), measure mean-value slack and Monte-Carlo makespan
standard deviation, and check each lands in its quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.montecarlo import sample_makespans
from repro.analysis.streaming import P2Quantile
from repro.campaign import ExecutionBackend, get_backend
from repro.core.slack import slack_analysis
from repro.dag.fork_join import join_dag
from repro.experiments.scale import Scale, get_scale
from repro.platform.platform import Platform
from repro.platform.workload import Workload
from repro.schedule.schedule import Schedule
from repro.stochastic.model import StochasticModel
from repro.util.rng import as_generator, spawn_generators
from repro.util.tables import format_table

__all__ = ["Fig9Result", "run", "build_quadrant_schedules"]


@dataclass(frozen=True)
class Fig9Result:
    """Slack, σ_M and median makespan of the four quadrant schedules."""

    labels: tuple[str, ...]
    slack_sums: tuple[float, ...]
    makespan_stds: tuple[float, ...]
    makespans: tuple[float, ...]
    makespan_medians: tuple[float, ...]

    def render(self) -> str:
        """Figure 9 as a text table."""
        header = "Fig. 9 — slack vs robustness quadrants on a join graph"
        rows = list(
            zip(
                self.labels,
                self.makespans,
                self.makespan_medians,
                self.slack_sums,
                self.makespan_stds,
            )
        )
        return header + "\n" + format_table(
            ["schedule", "E(M)", "p50(M)", "slack (sum)", "σ_M"], rows
        )

    def quadrant_check(self) -> dict[str, bool]:
        """Verify each schedule lands in its intended quadrant.

        Thresholds: the slack median splits slack-rich from slack-free, the
        σ_M median splits robust from non-robust.
        """
        slack = np.asarray(self.slack_sums)
        std = np.asarray(self.makespan_stds)
        slack_rich = slack > np.median(slack)
        robust = std < np.median(std)
        expect = {
            "a_spread": (True, True),
            "b_balanced": (False, True),
            "c_serial": (False, False),
            "d_unbalanced": (True, False),
        }
        out = {}
        for i, label in enumerate(self.labels):
            want_slack, want_robust = expect[label]
            out[label] = (bool(slack_rich[i]) == want_slack) and (
                bool(robust[i]) == want_robust
            )
        return out


def build_quadrant_schedules(
    n_branches: int = 12,
    rng: int | None | np.random.Generator = 7,
) -> tuple[Workload, dict[str, Schedule]]:
    """Build the join workload and the four quadrant schedules.

    Branch minimum durations are heterogeneous (uniform 10–20) so that
    parallel schedules have non-degenerate slack; costs are identical across
    machines (the paper's i.i.d. argument) and communication volumes are
    zero so placement only affects ordering.
    """
    gen = as_generator(rng)
    graph = join_dag(n_branches, volume=0.0, name=f"join_{n_branches}")
    n = n_branches + 1
    m = n_branches  # enough processors for the fully spread schedule
    durations = np.concatenate([gen.uniform(10.0, 20.0, n_branches), [10.0]])
    comp = np.repeat(durations[:, None], m, axis=1)
    workload = Workload(graph, Platform.uniform(m), comp)
    sink = n_branches

    def schedule_from(assignment: list[int], label: str) -> Schedule:
        proc = np.asarray(assignment + [0], dtype=np.intp)  # sink on proc 0
        orders: list[list[int]] = [[] for _ in range(m)]
        for t in range(n_branches):
            orders[proc[t]].append(t)
        orders[0].append(sink)
        return Schedule.from_proc_orders(workload, proc, orders, label=label)

    # (a) each branch on its own processor.
    spread = schedule_from(list(range(n_branches)), "a_spread")

    # (b) balanced chains on 3 processors (LPT packing).
    k = 3
    loads = [0.0] * k
    balanced_assign = [0] * n_branches
    for t in sorted(range(n_branches), key=lambda t: -durations[t]):
        p = int(np.argmin(loads))
        balanced_assign[t] = p
        loads[p] += durations[t]
    balanced = schedule_from(balanced_assign, "b_balanced")

    # (c) everything serialized on processor 0.
    serial = schedule_from([0] * n_branches, "c_serial")

    # (d) one branch alone on processor 1, the rest serialized on 0.
    unbalanced_assign = [0] * n_branches
    unbalanced_assign[int(np.argmin(durations[:n_branches]))] = 1
    unbalanced = schedule_from(unbalanced_assign, "d_unbalanced")

    return workload, {
        "a_spread": spread,
        "b_balanced": balanced,
        "c_serial": serial,
        "d_unbalanced": unbalanced,
    }


def _quadrant_stats(
    args: tuple[str, Schedule, StochasticModel, np.random.Generator, int],
) -> tuple[str, float, float, float, float]:
    """Slack, Monte-Carlo moments and median of one quadrant schedule.

    Mean and σ come from the full sample array (bit-identical to earlier
    releases); the median is estimated one observation at a time with the
    O(1)-memory :class:`~repro.analysis.streaming.P2Quantile`, the same
    reduction an out-of-core sampling loop would use.
    """
    label, schedule, model, gen, n_realizations = args
    sa = slack_analysis(schedule, model)
    samples = sample_makespans(schedule, model, gen, n_realizations=n_realizations)
    median = P2Quantile(0.5)
    for value in samples:
        median.add(float(value))
    return label, sa.slack_sum, float(samples.std()), float(samples.mean()), median.value


def run(
    scale: Scale | str | None = None,
    ul: float = 1.5,
    n_branches: int = 12,
    seed: int = 20070914,
    jobs: int = 1,
    backend: ExecutionBackend | None = None,
) -> Fig9Result:
    """Reproduce the Figure 9 quadrant study.

    A large UL (default 1.5) makes the robustness differences stark, as in
    the paper's conceptual figure.  Each quadrant schedule samples from its
    own :func:`~repro.util.rng.spawn_generators` child stream, so the
    result is identical for any ``jobs`` or execution backend (the four
    Monte-Carlo samplings fan out through the backend's generic ``map``;
    fig9 is not case-shaped, so the artifact-cache machinery does not
    apply).
    """
    scale = get_scale(scale)
    model = StochasticModel(ul=ul, grid_n=scale.grid_n)
    workload, schedules = build_quadrant_schedules(n_branches, rng=seed)
    gens = spawn_generators(seed + 1, len(schedules))
    tasks = [
        (label, schedule, model, gen, scale.mc_realizations)
        for (label, schedule), gen in zip(schedules.items(), gens)
    ]
    stats = get_backend(backend, jobs=jobs).map(_quadrant_stats, tasks)
    labels, slacks, stds, means, medians = zip(*stats)
    return Fig9Result(
        labels=tuple(labels),
        slack_sums=tuple(slacks),
        makespan_stds=tuple(stds),
        makespans=tuple(means),
        makespan_medians=tuple(medians),
    )
