"""Figures 7 & 8 — how fast the CLT tames a pathological distribution.

The paper's explanation for the near-perfect correlation between the
dispersion metrics is the central limit theorem: makespans are (mixtures of)
sums of many durations, hence close to Gaussian.  To probe how many summands
are needed, the paper builds a deliberately multi-modal "special
distribution" (a concatenation of Betas, Figure 7) and measures the KS/CM
distances between its n-fold self-convolution and the moment-matched normal
(Figure 8): after ~5 sums the variable is almost Gaussian, after ~10 the
difference is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.distance import cm_distance, ks_distance
from repro.experiments.scale import Scale, get_scale
from repro.stochastic.distributions import special_rv
from repro.stochastic.normal import NormalRV
from repro.util.tables import format_table

__all__ = ["Fig7Result", "Fig8Result", "run_fig7", "run_fig8"]


@dataclass(frozen=True)
class Fig7Result:
    """The special distribution next to its moment-matched normal."""

    xs: np.ndarray
    special_pdf: np.ndarray
    normal_pdf: np.ndarray
    mean: float
    std: float

    def render(self, n_rows: int = 15) -> str:
        """Figure 7 as a text table."""
        header = (
            "Fig. 7 — special (multi-modal) distribution vs normal with the "
            f"same mean={self.mean:.3f} and std={self.std:.3f}"
        )
        idx = np.linspace(0, len(self.xs) - 1, n_rows).astype(int)
        rows = [
            (float(self.xs[i]), float(self.special_pdf[i]), float(self.normal_pdf[i]))
            for i in idx
        ]
        return header + "\n" + format_table(["x", "special f", "normal f"], rows)


@dataclass(frozen=True)
class Fig8Result:
    """KS/CM of the n-fold self-sum against the matched normal."""

    counts: tuple[int, ...]
    ks: tuple[float, ...]
    cm: tuple[float, ...]

    def render(self) -> str:
        """Figure 8 as a text table."""
        header = "Fig. 8 — precision of the normal approximation after n sums"
        rows = list(zip(self.counts, self.ks, self.cm))
        return header + "\n" + format_table(["n", "KS", "CM"], rows)


def run_fig7(scale: Scale | str | None = None) -> Fig7Result:
    """Reproduce Figure 7 (the distributions themselves)."""
    special = special_rv()
    mean, std = special.mean(), special.std()
    normal = NormalRV(mean, std * std)
    xs = np.linspace(special.lo, special.hi, 200)
    special_pdf = np.interp(xs, special.xs, special.pdf, left=0.0, right=0.0)
    normal_numeric = normal.to_numeric(grid_n=401)
    normal_pdf = np.interp(
        xs, normal_numeric.xs, normal_numeric.pdf, left=0.0, right=0.0
    )
    return Fig7Result(
        xs=xs, special_pdf=special_pdf, normal_pdf=normal_pdf, mean=mean, std=std
    )


def run_fig8(scale: Scale | str | None = None) -> Fig8Result:
    """Reproduce Figure 8 (KS/CM vs number of summed variables)."""
    scale = get_scale(scale)
    special = special_rv()
    mean, var = special.mean(), special.var()
    counts = tuple(range(1, scale.fig8_max_sum + 1))
    ks_out, cm_out = [], []
    current = special
    for n in counts:
        if n > 1:
            current = current.add(special, grid_n=len(current.xs) + len(special.xs))
        normal = NormalRV(n * mean, n * var).to_numeric(grid_n=1025)
        ks_out.append(ks_distance(current, normal))
        cm_out.append(cm_distance(current, normal))
    return Fig8Result(counts=counts, ks=tuple(ks_out), cm=tuple(cm_out))
