"""Experiment scaling: quick / default / paper population sizes.

The paper's counts (10 000 random schedules per case, 100 000 Monte-Carlo
realizations) took a compiled C/GSL program considerable time; this pure
Python reproduction keeps the *code path* identical and scales the
*population sizes*.  Pearson correlations stabilize with a few hundred
samples, so ``quick`` and ``default`` scales already reproduce every
qualitative result; ``paper`` scale reproduces the original counts exactly.

Select a scale with the ``REPRO_SCALE`` environment variable
(``quick`` | ``default`` | ``paper``) or pass a :class:`Scale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "QUICK", "DEFAULT", "PAPER", "get_scale"]


@dataclass(frozen=True)
class Scale:
    """Population sizes for the experiment harness.

    Attributes
    ----------
    name:
        Scale label.
    n_random_small / n_random_medium / n_random_large:
        Random schedules per case, for small (≈10 tasks), medium (≈30) and
        large (≈100) graphs.
    mc_realizations:
        Monte-Carlo realizations for validation experiments (Figs 1, 2, 9).
    grid_n:
        RV grid resolution (the paper used 64 points).
    fig1_sizes:
        Graph sizes for the Figure 1 precision sweep.
    fig8_max_sum:
        Largest self-convolution count for the Figure 8 CLT sweep.
    """

    name: str
    n_random_small: int
    n_random_medium: int
    n_random_large: int
    mc_realizations: int
    grid_n: int
    fig1_sizes: tuple[int, ...]
    fig8_max_sum: int

    def n_random(self, n_tasks: int) -> int:
        """Random-schedule count for a graph of ``n_tasks``."""
        if n_tasks <= 15:
            return self.n_random_small
        if n_tasks <= 50:
            return self.n_random_medium
        return self.n_random_large


QUICK = Scale(
    name="quick",
    n_random_small=100,
    n_random_medium=50,
    n_random_large=16,
    mc_realizations=20_000,
    grid_n=65,
    fig1_sizes=(10, 30),
    fig8_max_sum=15,
)

DEFAULT = Scale(
    name="default",
    n_random_small=500,
    n_random_medium=250,
    n_random_large=60,
    mc_realizations=50_000,
    grid_n=65,
    fig1_sizes=(10, 30, 100),
    fig8_max_sum=30,
)

PAPER = Scale(
    name="paper",
    n_random_small=10_000,
    n_random_medium=10_000,
    n_random_large=2_000,
    mc_realizations=100_000,
    grid_n=129,
    fig1_sizes=(10, 30, 100, 1000),
    fig8_max_sum=30,
)

_BY_NAME = {s.name: s for s in (QUICK, DEFAULT, PAPER)}


def get_scale(name: str | Scale | None = None) -> Scale:
    """Resolve a scale by name, object or the ``REPRO_SCALE`` env var."""
    if isinstance(name, Scale):
        return name
    if name is None:
        name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
