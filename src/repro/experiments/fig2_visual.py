"""Figure 2 — analytic vs empirical makespan PDF at mediocre KS.

The paper shows that even a "mediocre" KS value (≈ 0.17) corresponds to an
analytic density visually close to the 100 000-realization histogram — the
independence assumption shifts and sharpens the distribution slightly but
preserves its shape.  We reproduce the experiment on a large random-graph
case and report the two densities on a common grid plus the KS/CM values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.classical import classical_makespan
from repro.analysis.distance import cm_distance, ks_distance
from repro.analysis.montecarlo import sample_makespans
from repro.experiments.scale import Scale, get_scale
from repro.platform.workload import random_workload
from repro.schedule.random_schedule import random_schedule
from repro.stochastic.model import StochasticModel
from repro.stochastic.rv import NumericRV
from repro.util.rng import as_generator
from repro.util.tables import format_table

__all__ = ["Fig2Result", "run"]


@dataclass(frozen=True)
class Fig2Result:
    """Analytic and empirical densities on a common grid."""

    xs: np.ndarray
    analytic_pdf: np.ndarray
    empirical_pdf: np.ndarray
    ks: float
    cm: float
    n_tasks: int
    n_realizations: int

    def render(self, n_rows: int = 15) -> str:
        """Figure 2 as a text table (downsampled rows)."""
        header = (
            f"Fig. 2 — analytic vs empirical makespan density "
            f"(random graph n={self.n_tasks}, {self.n_realizations} realizations)\n"
            f"KS = {self.ks:.3g}, CM = {self.cm:.3g}"
        )
        idx = np.linspace(0, len(self.xs) - 1, n_rows).astype(int)
        rows = [
            (float(self.xs[i]), float(self.analytic_pdf[i]), float(self.empirical_pdf[i]))
            for i in idx
        ]
        return header + "\n" + format_table(
            ["makespan", "calculated f", "experimental f"], rows
        )


def run(
    scale: Scale | str | None = None,
    n_tasks: int = 100,
    ul: float = 1.1,
    seed: int = 20070911,
) -> Fig2Result:
    """Reproduce Figure 2 at the given scale."""
    scale = get_scale(scale)
    rng = as_generator(seed)
    from repro.experiments.cases import procs_for_size

    workload = random_workload(n_tasks, procs_for_size(n_tasks), rng=rng)
    schedule = random_schedule(workload, rng)
    model = StochasticModel(ul=ul, grid_n=scale.grid_n)
    analytic = classical_makespan(schedule, model)
    samples = sample_makespans(
        schedule, model, rng, n_realizations=scale.mc_realizations
    )
    empirical = NumericRV.from_samples(samples, grid_n=scale.grid_n)
    lo = min(analytic.lo, empirical.lo)
    hi = max(analytic.hi, empirical.hi)
    xs = np.linspace(lo, hi, 200)
    analytic_pdf = np.interp(xs, analytic.xs, analytic.pdf, left=0.0, right=0.0)
    empirical_pdf = np.interp(xs, empirical.xs, empirical.pdf, left=0.0, right=0.0)
    return Fig2Result(
        xs=xs,
        analytic_pdf=analytic_pdf,
        empirical_pdf=empirical_pdf,
        ks=ks_distance(analytic, samples),
        cm=cm_distance(analytic, samples),
        n_tasks=n_tasks,
        n_realizations=scale.mc_realizations,
    )
