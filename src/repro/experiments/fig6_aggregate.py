"""Figure 6 — mean and σ of the Pearson matrices over the 24-case suite.

The paper's summary figure: element-wise average (upper triangle) and
standard deviation (lower triangle) of the 8×8 Pearson matrices over the 24
cases with ≤ 100 nodes.  The headline reading:

* σ_M, entropy, lateness and A(δ) are mutually correlated ≈ 1 with tiny σ;
* E(M) correlates strongly (≈ 0.77) but imperfectly with that block;
* slack anti-correlates with everything (it is *not* a robustness proxy);
* raw R(γ) correlates weakly, but R(γ)/E(M) correlates ≈ 0.998 with σ_M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign import ArtifactCache, Campaign, expand_suite
from repro.core.correlation import aggregate_matrices, pearson
from repro.core.study import CaseResult
from repro.experiments.cases import CaseSpec, default_suite
from repro.experiments.scale import Scale, get_scale
from repro.core.metrics import METRIC_NAMES
from repro.util.tables import format_matrix, format_table

__all__ = ["Fig6Result", "run"]


@dataclass(frozen=True)
class Fig6Result:
    """Aggregated Pearson statistics over the case suite."""

    specs: tuple[CaseSpec, ...]
    mean: np.ndarray
    std: np.ndarray
    rel_over_m_vs_std_mean: float
    rel_over_m_vs_std_std: float
    case_results: tuple[CaseResult, ...]

    def render(self) -> str:
        """Figure 6 as a combined mean/σ matrix plus the §VII statistic."""
        lines = [
            f"Fig. 6 — Pearson coefficients over {len(self.specs)} cases "
            "(upper: mean, lower: std. dev.)",
            format_matrix(self.mean, list(METRIC_NAMES), lower=self.std),
            "",
            "§VII derived metric: corr( R(γ)/E(M), σ_M ) = "
            f"{self.rel_over_m_vs_std_mean:+.3f} ± {self.rel_over_m_vs_std_std:.3f} "
            "(paper: 0.998 ± 0.009)",
        ]
        return "\n".join(lines)

    def heuristic_summary(self) -> str:
        """How often each heuristic beats the random population (per case)."""
        rows = []
        for spec, case in zip(self.specs, self.case_results):
            n_rand = case.panel.n_schedules - len(case.heuristic_metrics)
            rand_ms = case.panel.column("makespan")[:n_rand]
            rand_std = case.panel.column("makespan_std")[:n_rand]
            for name, hm in sorted(case.heuristic_metrics.items()):
                rows.append(
                    (
                        spec.name,
                        name,
                        hm.makespan,
                        float((rand_ms < hm.makespan).mean()),
                        hm.makespan_std,
                        float((rand_std < hm.makespan_std).mean()),
                    )
                )
        return format_table(
            ["case", "heuristic", "makespan", "frac rand better (M)",
             "σ_M", "frac rand better (σ)"],
            rows,
        )


def run(
    scale: Scale | str | None = None,
    seed: int = 20070913,
    specs: list[CaseSpec] | None = None,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    force: bool = False,
) -> Fig6Result:
    """Run the case suite and aggregate the Pearson matrices.

    The suite is expanded into a campaign: ``jobs`` cases run concurrently
    in worker processes (results are bit-identical to ``jobs=1`` because
    each case's RNG stream is derived from its own spec), and with
    ``cache`` set completed cases are reused across runs.
    """
    scale = get_scale(scale)
    if specs is None:
        specs = default_suite()
    campaign = Campaign(
        expand_suite(specs, scale, base_seed=seed),
        jobs=jobs,
        cache=cache,
        force=force,
    )
    results = campaign.run()
    rel_corrs: list[float] = []
    for spec, case in zip(specs, results):
        n_random = scale.n_random(spec.n_tasks)
        rel_over_m = case.panel.oriented_rel_prob_over_makespan()[:n_random]
        std = case.panel.column("makespan_std")[:n_random]
        rel_corrs.append(pearson(rel_over_m, std))
    mean, std = aggregate_matrices([c.pearson for c in results])
    rel = np.asarray(rel_corrs)
    rel = rel[np.isfinite(rel)]
    return Fig6Result(
        specs=tuple(specs),
        mean=mean,
        std=std,
        rel_over_m_vs_std_mean=float(rel.mean()),
        rel_over_m_vs_std_std=float(rel.std()),
        case_results=tuple(results),
    )
