"""Figure 6 — mean and σ of the Pearson matrices over the 24-case suite.

The paper's summary figure: element-wise average (upper triangle) and
standard deviation (lower triangle) of the 8×8 Pearson matrices over the 24
cases with ≤ 100 nodes.  The headline reading:

* σ_M, entropy, lateness and A(δ) are mutually correlated ≈ 1 with tiny σ;
* E(M) correlates strongly (≈ 0.77) but imperfectly with that block;
* slack anti-correlates with everything (it is *not* a robustness proxy);
* raw R(γ) correlates weakly, but R(γ)/E(M) correlates ≈ 0.998 with σ_M.

Both the campaign runner (:func:`run`) and the cache summarizer
(:func:`aggregate_from_cache`) reduce case results through the same
streaming :class:`~repro.campaign.aggregate.SuiteAggregator` in the same
case order, so their matrices and §VII statistic are **bit-identical** —
and neither ever holds more than one case panel in memory unless raw
panels are explicitly requested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign import (
    ArtifactCache,
    Campaign,
    CampaignCase,
    ExecutionBackend,
    SuiteAggregate,
    SuiteAggregator,
    expand_suite,
)
from repro.core.study import CaseResult
from repro.experiments.cases import CaseSpec, default_suite
from repro.experiments.scale import Scale, get_scale
from repro.core.metrics import METRIC_NAMES
from repro.util.tables import format_matrix, format_table

__all__ = ["Fig6Result", "run", "aggregate_from_cache"]


@dataclass(frozen=True)
class Fig6Result:
    """Aggregated Pearson statistics over the case suite.

    ``case_results`` is ``None`` in streaming mode (the default for cache
    aggregation, opt-in via ``keep_case_results`` for :func:`run`): the
    summary statistics are folded case by case and the raw panels are
    dropped, so memory stays O(1) in the suite size.  ``n_cases`` counts
    the cases actually aggregated — it can be smaller than ``len(specs)``
    when summarizing the cache of an interrupted sweep, in which case the
    statistics are the exact aggregate of the completed cases.
    """

    specs: tuple[CaseSpec, ...]
    mean: np.ndarray
    std: np.ndarray
    rel_over_m_vs_std_mean: float
    rel_over_m_vs_std_std: float
    n_cases: int
    heuristic_rows: tuple[tuple[str, str, float, float, float, float], ...]
    case_results: tuple[CaseResult, ...] | None = None
    case_rows: tuple[tuple[str, float, float], ...] = ()

    def render(self) -> str:
        """Figure 6 as a combined mean/σ matrix plus the §VII statistic."""
        suffix = "" if self.n_cases == len(self.specs) else (
            f" (partial: {self.n_cases}/{len(self.specs)} cases)"
        )
        lines = [
            f"Fig. 6 — Pearson coefficients over {self.n_cases} cases "
            f"(upper: mean, lower: std. dev.){suffix}",
            format_matrix(self.mean, list(METRIC_NAMES), lower=self.std),
            "",
            "§VII derived metric: corr( R(γ)/E(M), σ_M ) = "
            f"{self.rel_over_m_vs_std_mean:+.3f} ± {self.rel_over_m_vs_std_std:.3f} "
            "(paper: 0.998 ± 0.009)",
        ]
        if self.case_rows:
            lines += [
                "",
                "Per-case percentile column (P²-streamed over the random "
                "population):",
                self.percentile_summary(),
            ]
        return "\n".join(lines)

    def suite_aggregate(self) -> SuiteAggregate:
        """This result's statistics as a :class:`SuiteAggregate`.

        The canonical cross-backend comparison form: the CLI's ``--json``
        output dumps it, and CI byte-compares it between a single-process
        run and a shard/worker/merge round trip.
        """
        return SuiteAggregate(
            n_cases=self.n_cases,
            mean=self.mean,
            std=self.std,
            rel_mean=self.rel_over_m_vs_std_mean,
            rel_std=self.rel_over_m_vs_std_std,
            heuristic_rows=self.heuristic_rows,
            case_rows=self.case_rows,
        )

    def percentile_summary(self) -> str:
        """Per-case percentile column: streamed p50/p95 random makespan.

        The ROADMAP follow-up column — the median and 95th percentile of
        each case's random-schedule expected makespans, estimated by the
        O(1)-memory :class:`~repro.analysis.streaming.P2Quantile` during
        aggregation, so it is available in streaming and cache-aggregation
        modes alike (no panels required).
        """
        rows = [
            (name, f"{p50:.1f}", f"{p95:.1f}") for name, p50, p95 in self.case_rows
        ]
        return format_table(["case", "p50(M)", "p95(M)"], rows)

    def heuristic_summary(self) -> str:
        """How often each heuristic beats the random population (per case).

        Computed from the per-case summary rows folded during aggregation,
        so it is available in streaming mode too (no panels required).
        """
        return format_table(
            ["case", "heuristic", "makespan", "frac rand better (M)",
             "σ_M", "frac rand better (σ)"],
            list(self.heuristic_rows),
        )


def _result_from_aggregate(
    specs: list[CaseSpec],
    aggregator: SuiteAggregator,
    case_results: tuple[CaseResult, ...] | None,
) -> Fig6Result:
    agg = aggregator.finalize()
    return Fig6Result(
        specs=tuple(specs),
        mean=agg.mean,
        std=agg.std,
        rel_over_m_vs_std_mean=agg.rel_mean,
        rel_over_m_vs_std_std=agg.rel_std,
        n_cases=agg.n_cases,
        heuristic_rows=agg.heuristic_rows,
        case_results=case_results,
        case_rows=agg.case_rows,
    )


def run(
    scale: Scale | str | None = None,
    seed: int = 20070913,
    specs: list[CaseSpec] | None = None,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    force: bool = False,
    stream: bool = False,
    keep_case_results: bool | None = None,
    backend: ExecutionBackend | None = None,
    fast_conv: bool = False,
) -> Fig6Result:
    """Run the case suite and aggregate the Pearson matrices.

    The suite is expanded into a campaign and dispatched through any
    :class:`~repro.campaign.backend.ExecutionBackend` — ``backend=None``
    keeps the historical policy (``jobs`` worker processes, or inline for
    ``jobs=1``).  Results are bit-identical across backends because each
    case's RNG stream is derived from its own spec; with ``cache`` set,
    completed cases are reused across runs.  Results are consumed from the
    runner's as-completed stream and folded into a
    :class:`~repro.campaign.aggregate.SuiteAggregator` in case order, so
    the aggregate does not depend on completion order.

    With ``stream=True`` the raw :class:`CaseResult` panels are dropped as
    soon as each case is folded — O(1) memory in the suite size.
    ``keep_case_results`` overrides the retention default (``not stream``)
    for tests and post-hoc analyses that need the raw panels.

    ``fast_conv=True`` runs the suite under the fast grid-algebra
    precision policy (classical/Dodin only); its cases hash to different
    artifact keys, so fast and exact caches never collide.
    """
    scale = get_scale(scale)
    if specs is None:
        specs = default_suite()
    campaign = Campaign(
        expand_suite(specs, scale, base_seed=seed, fast_conv=fast_conv),
        jobs=jobs,
        cache=cache,
        force=force,
        backend=backend,
    )
    keep = (not stream) if keep_case_results is None else keep_case_results
    aggregator = SuiteAggregator()
    kept: dict[int, CaseResult] = {}
    for index, case, result in campaign.iter_results():
        aggregator.add_case(index, case, result)
        if keep:
            kept[index] = result
    case_results = (
        tuple(kept[i] for i in range(len(specs))) if keep else None
    )
    return _result_from_aggregate(specs, aggregator, case_results)


def aggregate_from_cache(
    scale: Scale | str | None = None,
    seed: int = 20070913,
    specs: list[CaseSpec] | None = None,
    cache: ArtifactCache | None = None,
    fast_conv: bool = False,
    cases: "list[CampaignCase] | None" = None,
) -> Fig6Result:
    """Summarize an existing campaign cache — no case is ever recomputed.

    Expands the same suite as :func:`run` (same scale, same seed, hence the
    same artifact keys), streams each case's artifact through the same
    aggregator in the same order, and drops it — peak memory is one panel.
    On a complete cache the result is bit-identical to :func:`run`; on the
    cache of an interrupted sweep the aggregate is exact for the cases that
    completed (``n_cases`` reports how many), and missing cases are simply
    skipped.

    With ``cases`` given (e.g. a :meth:`repro.caseset.CaseSet.cases`
    expansion), the suite-expansion step is bypassed and the fold runs
    over exactly that ordered case list — this is the oracle the sweep
    engine's streamed aggregate must match byte for byte.

    Raises :class:`ValueError` when the cache holds no artifact of the
    suite at all.
    """
    if cache is None:
        raise ValueError("aggregate_from_cache requires an artifact cache")
    scale = get_scale(scale)
    if specs is None:
        specs = default_suite()
    if cases is None:
        cases = expand_suite(specs, scale, base_seed=seed, fast_conv=fast_conv)
    # Cache iteration visits cases in case order, so immediate folding
    # (ordered=False) follows the same canonical fold sequence as `run` —
    # while tolerating holes left by interrupted sweeps.
    aggregator = SuiteAggregator(ordered=False)
    for index, case, result in cache.iter_results(cases):
        aggregator.add_case(index, case, result)
    if aggregator.n_cases == 0:
        raise ValueError(
            f"no artifacts of this suite (scale={scale.name}, seed={seed}) "
            f"found in {cache.root}"
        )
    return _result_from_aggregate(specs, aggregator, None)
