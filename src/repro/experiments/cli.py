"""Command-line entry point: ``repro-experiments <figure> [--scale …]``.

Runs any figure of the paper (or the whole set) and prints the text report.
Example::

    repro-experiments fig6 --scale default
    REPRO_SCALE=paper repro-experiments all

Running campaigns
-----------------
The case-suite figures (fig3/fig4/fig5/fig6) execute through the
:mod:`repro.campaign` layer, which fans independent cases out across
worker processes and persists every finished case as a content-addressed
JSON artifact.  (fig9 is not case-based: it honours ``--jobs`` — each
quadrant's Monte-Carlo sampling can run in its own process — but has no
artifacts to cache, so ``--cache-dir``/``--resume``/``--force`` do not
apply to it.)

``--jobs N``
    Evaluate up to ``N`` cases concurrently in worker processes.  Each
    case derives its RNG stream from its own spec, so the report is
    **bit-identical** for any ``N`` (and to the historical serial path).

``--cache-dir DIR``
    Persist/reuse per-case artifacts in ``DIR``.  A re-run of the same
    figure, scale and seed loads every completed case from disk instead of
    recomputing it; corrupt or truncated artifacts are detected by content
    hash and recomputed transparently.

``--resume``
    Shorthand for caching in the default directory ``.repro-cache`` —
    re-running after an interruption (Ctrl-C, OOM, crash) picks up where
    the previous run stopped, skipping all completed cases.

``--force``
    Recompute every case even when a valid artifact exists, overwriting
    the artifacts.

``--stream``
    Fold fig6's per-case results into the streaming aggregator and drop
    each panel immediately — O(1) memory in the number of cases, same
    numbers bit-for-bit.

Example — a paper-scale sweep that survives interruptions::

    repro-experiments fig6 --scale paper --jobs 8 --resume

Summarizing without recomputation
---------------------------------
``aggregate`` is a pseudo-figure that re-derives the Figure 6 report
purely from an existing artifact cache::

    repro-experiments aggregate --scale paper --cache-dir .repro-cache

It streams the cached artifacts through the same aggregation as ``fig6``
(bit-identical on a complete cache), skips cases whose artifacts are
missing (the partial aggregate of an interrupted sweep is exact for the
completed cases), and never computes anything.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import replace
from typing import Callable

from repro.campaign import ArtifactCache
from repro.experiments import fig1_precision, fig2_visual, fig6_aggregate, fig78_clt
from repro.experiments import fig345_panels, fig9_slack_quadrants
from repro.experiments.scale import get_scale

__all__ = ["main", "DEFAULT_CACHE_DIR"]

#: Cache directory used by ``--resume`` when ``--cache-dir`` is not given.
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")

#: Figures whose cases run through the campaign layer (cache + fan-out).
_CAMPAIGN_FIGURES = ("fig3", "fig4", "fig5", "fig6")


def _runners() -> dict[str, Callable[..., object]]:
    return {
        "fig1": fig1_precision.run,
        "fig2": fig2_visual.run,
        "fig3": fig345_panels.run_fig3,
        "fig4": fig345_panels.run_fig4,
        "fig5": fig345_panels.run_fig5,
        "fig6": fig6_aggregate.run,
        "fig7": fig78_clt.run_fig7,
        "fig8": fig78_clt.run_fig8,
        "fig9": fig9_slack_quadrants.run,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    runners = _runners()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of Canon & Jeannot (2007).",
    )
    parser.add_argument(
        "figure",
        choices=[*runners.keys(), "aggregate", "all"],
        help="figure to reproduce, 'aggregate' (summarize a cache), or 'all'",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["quick", "default", "paper"],
        help="population scale (default: env REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for campaign figures (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="persist/reuse per-case artifacts here (campaign figures)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"cache in {DEFAULT_CACHE_DIR}/ so interrupted runs resume",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute cases even when a valid cached artifact exists",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="fig6: stream per-case results through the aggregator "
        "(O(1) memory, bit-identical report)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="also append the rendered reports to this file",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="dump metric-panel CSVs here (panel figures: fig3/fig4/fig5)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be ≥ 1")
    scale = get_scale(args.scale)

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None

    if args.figure == "aggregate" and cache is None:
        parser.error("aggregate requires --cache-dir or --resume")

    chunks: list[str] = []
    names = list(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.perf_counter()
        if name == "aggregate":
            try:
                result = fig6_aggregate.aggregate_from_cache(scale, cache=cache)
            except ValueError as exc:
                # Empty/typo'd cache dir, or artifacts of another scale/seed.
                parser.error(str(exc))
        elif name in _CAMPAIGN_FIGURES:
            # Snapshot the shared cache counters so the line printed after
            # this figure shows its own hits/stores, not the running total.
            before = replace(cache.stats) if cache is not None else None
            kwargs = {"jobs": args.jobs, "cache": cache, "force": args.force}
            if name == "fig6":
                kwargs["stream"] = args.stream
            result = runners[name](scale, **kwargs)
        elif name == "fig9":
            result = runners[name](scale, jobs=args.jobs)
        else:
            result = runners[name](scale)
        elapsed = time.perf_counter() - t0
        text = result.render()
        print(text)
        print(f"[{name} done in {elapsed:.1f}s at scale={scale.name}]")
        if name == "aggregate":
            print(
                f"[aggregate {cache_dir}: {result.n_cases}/{len(result.specs)} "
                "cases summarized, nothing recomputed]"
            )
        if cache is not None and name in _CAMPAIGN_FIGURES:
            s, b = cache.stats, before
            corrupt = s.corrupt - b.corrupt
            print(
                f"[cache {cache_dir}: {s.hits - b.hits} hits, "
                f"{s.stores - b.stores} stored"
                + (f", {corrupt} corrupt recomputed" if corrupt else "")
                + "]"
            )
        print()
        chunks.append(text + "\n")
        if args.csv_dir is not None and hasattr(result, "case"):
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            path = args.csv_dir / f"{name}_panel.csv"
            path.write_text(result.case.panel.to_csv())
            print(f"[wrote {path}]")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("a") as fh:
            fh.write("\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
