"""Command-line entry point: ``repro-experiments <figure> [--scale …]``.

Runs any figure of the paper (or the whole set) and prints the text report.
Example::

    repro-experiments fig6 --scale default
    REPRO_SCALE=paper repro-experiments all

Running campaigns
-----------------
The case-suite figures (fig3/fig4/fig5/fig6) execute through the
:mod:`repro.campaign` layer, which fans independent cases out across
worker processes and persists every finished case as a content-addressed
JSON artifact.  (fig9 is not case-based: it honours ``--jobs`` — each
quadrant's Monte-Carlo sampling can run in its own process — but has no
artifacts to cache, so ``--cache-dir``/``--resume``/``--force`` do not
apply to it.)

``--jobs N``
    Evaluate up to ``N`` cases concurrently in worker processes.  Each
    case derives its RNG stream from its own spec, so the report is
    **bit-identical** for any ``N`` (and to the historical serial path).

``--cache-dir DIR``
    Persist/reuse per-case artifacts in ``DIR``.  A re-run of the same
    figure, scale and seed loads every completed case from disk instead of
    recomputing it; corrupt or truncated artifacts are detected by content
    hash and recomputed transparently.

``--resume``
    Shorthand for caching in the default directory ``.repro-cache`` —
    re-running after an interruption (Ctrl-C, OOM, crash) picks up where
    the previous run stopped, skipping all completed cases.

``--force``
    Recompute every case even when a valid artifact exists, overwriting
    the artifacts.

``--stream``
    Fold fig6's per-case results into the streaming aggregator and drop
    each panel immediately — O(1) memory in the number of cases, same
    numbers bit-for-bit.

Example — a paper-scale sweep that survives interruptions::

    repro-experiments fig6 --scale paper --jobs 8 --resume

Summarizing without recomputation
---------------------------------
``aggregate`` is a pseudo-figure that re-derives the Figure 6 report
purely from an existing artifact cache::

    repro-experiments aggregate --scale paper --cache-dir .repro-cache

It streams the cached artifacts through the same aggregation as ``fig6``
(bit-identical on a complete cache), skips cases whose artifacts are
missing (the partial aggregate of an interrupted sweep is exact for the
completed cases), and never computes anything.

Execution backends
------------------
``--backend {serial,process,shard,queue}`` selects where campaign cases
run (default: serial for ``--jobs 1``, a local process pool otherwise).
The ``shard`` backend rehearses the multi-machine protocol locally:
``--shards N`` shard files, each executed by a subprocess worker.  The
``queue`` backend runs the elastic pull-worker fleet (see below).

The protocol itself is driven by the ``campaign`` command group — the
multi-machine path, where each step can run on a different host against a
shared (or per-host, later-merged) cache directory::

    repro-experiments campaign shard --scale paper --shards 4 --out-dir shards/
    repro-experiments campaign worker shards/shard-000-of-004.json --cache-dir cache/
    ... (one worker invocation per shard, anywhere)
    repro-experiments campaign merge shards/partial-*.json

``campaign verify-cache --cache-dir DIR`` audits a cache directory for
corrupt, orphaned or half-written artifacts without recomputing anything.

The elastic queue fleet
-----------------------
Where ``campaign worker`` executes one *fixed* manifest, the queue path
lets any number of workers **pull** shards from a shared queue directory —
workers may join late, crash, or be replaced, and the suite still
completes with byte-identical results::

    repro-experiments campaign queue-init work/queue --scale paper --shards 8
    repro-experiments campaign queue-worker work/queue --cache-dir cache/   # × N hosts
    repro-experiments campaign queue-status work/queue
    repro-experiments campaign merge work/queue/partials/partial-*.json

Workers claim shards atomically (``O_EXCL`` claim files), heartbeat while
running, and emit the same partials as ``campaign worker``; stale claims
are requeued with bounded retries (then poisoned and reported).  The
one-shot form ``fig6 --backend queue --jobs N --queue-dir DIR`` drives
the whole fleet from one coordinator process (``--queue-lease`` /
``--queue-max-attempts`` tune the reaper).

SIGTERM/SIGINT ask a ``queue-worker`` to drain gracefully: it finishes —
or, mid-shard, releases — its current claim and exits with code 3 when
the queue is still incomplete; a second signal force-aborts (code 4).
``--forever`` keeps a worker polling after the queue drains (the service
fleet mode, where new single-case tasks arrive at any time).

The query service
-----------------
``serve`` runs the robustness-as-a-service HTTP layer over a cache and a
queue directory (see :mod:`repro.service`)::

    repro-experiments serve --cache-dir cache/ --workers 2 --port 8080
    curl 'http://127.0.0.1:8080/case?kind=cholesky&param=7&ul=1.1'

Cache hits answer in O(1) via the persistent cache index; misses are
enqueued as single-case tasks and computed by the worker fleet within a
per-request deadline.  Overload sheds with 429 + ``Retry-After``;
``/healthz`` and ``/stats`` expose liveness and counters.

Case-set sweeps
---------------
``campaign sweep`` selects a whole suite with one case-set expression
(see :mod:`repro.caseset`) and aggregates it — computing only what the
cache does not already hold::

    repro-experiments campaign sweep \\
        'graph[chol84,ge90] x ul[0.1-0.6/0.1] x seed[0-9]' \\
        --cache-dir cache/ --jobs 4 --json sweep.json

``--fold`` prints the canonical compact form, ``--expand`` lists the
expanded cases, and ``--from-cache`` aggregates only what is already
cached (exit 1 + the *missing subset folded back to an expression* when
incomplete — paste it straight into the next sweep).  The same resolver
backs ``GET /sweep?expr=...`` on the service, which streams incremental
aggregate updates (SSE or NDJSON) while the fleet computes the cold
subset; ``campaign queue-status --json`` exposes machine-readable queue
state for scripts and CI.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import replace
from typing import Callable

from repro.campaign import (
    ArtifactCache,
    BACKEND_NAMES,
    ShardManifest,
    ShardPartial,
    expand_suite,
    get_backend,
    merge_partials,
    partition_cases,
    run_shard,
    suite_aggregate_to_payload,
)
from repro.experiments import fig1_precision, fig2_visual, fig6_aggregate, fig78_clt
from repro.experiments import fig345_panels, fig9_slack_quadrants
from repro.experiments.cases import default_suite
from repro.experiments.scale import get_scale
from repro.io.json_io import canonical_json

__all__ = ["main", "DEFAULT_CACHE_DIR"]

#: Cache directory used by ``--resume`` when ``--cache-dir`` is not given.
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")

#: Figures whose cases run through the campaign layer (cache + fan-out).
_CAMPAIGN_FIGURES = ("fig3", "fig4", "fig5", "fig6")


def _write_aggregate_json(path: pathlib.Path, aggregate) -> None:
    """Dump a suite aggregate as canonical JSON (one trailing newline).

    The single writer behind both ``--json`` sites (figure run and
    ``campaign merge``): the files are byte-compared by CI and users, so
    the encoding must never diverge between them.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(suite_aggregate_to_payload(aggregate)) + "\n")
    print(f"[wrote {path}]")


def _runners() -> dict[str, Callable[..., object]]:
    return {
        "fig1": fig1_precision.run,
        "fig2": fig2_visual.run,
        "fig3": fig345_panels.run_fig3,
        "fig4": fig345_panels.run_fig4,
        "fig5": fig345_panels.run_fig5,
        "fig6": fig6_aggregate.run,
        "fig7": fig78_clt.run_fig7,
        "fig8": fig78_clt.run_fig8,
        "fig9": fig9_slack_quadrants.run,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:  # pragma: no cover - interactive invocation
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    runners = _runners()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of Canon & Jeannot (2007).",
    )
    parser.add_argument(
        "figure",
        choices=[*runners.keys(), "aggregate", "all"],
        help="figure to reproduce, 'aggregate' (summarize a cache), or "
        "'all'; see also the 'campaign' command group "
        "(shard/worker/merge/verify-cache) and 'serve' (the HTTP query "
        "service)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["quick", "default", "paper"],
        help="population scale (default: env REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for campaign figures (default: 1, serial)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="execution backend for campaign figures (default: serial for "
        "--jobs 1, a process pool otherwise)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count for --backend shard/queue (default: --jobs, min 2)",
    )
    parser.add_argument(
        "--queue-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="--backend queue: persistent work-queue directory (external "
        "`campaign queue-worker` processes may join the fleet; shard-level "
        "resume re-dispatches only shards with missing partials)",
    )
    parser.add_argument(
        "--queue-lease",
        type=float,
        default=None,
        metavar="SEC",
        help="--backend queue: heartbeat lease — shards whose worker goes "
        "silent this long are requeued (default: 60)",
    )
    parser.add_argument(
        "--queue-max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="--backend queue: execution attempts per shard before it is "
        "poisoned (default: 3)",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="fig6/aggregate: also dump the suite aggregate as canonical "
        "JSON (the cross-backend bit-identity comparison format)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="persist/reuse per-case artifacts here (campaign figures)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"cache in {DEFAULT_CACHE_DIR}/ so interrupted runs resume",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute cases even when a valid cached artifact exists",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="fig6: stream per-case results through the aggregator "
        "(O(1) memory, bit-identical report)",
    )
    parser.add_argument(
        "--fast-conv",
        action="store_true",
        help="campaign figures: opt the grid engines into the fast "
        "precision policy (capped conv/max grids + FFT dispatch; see "
        "docs/performance.md — measured error bounds, distinct cache keys)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="also append the rendered reports to this file",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="dump metric-panel CSVs here (panel figures: fig3/fig4/fig5)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be ≥ 1")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be ≥ 1")
    if args.shards is not None and args.backend not in ("shard", "queue"):
        parser.error("--shards only applies to --backend shard/queue")
    queue_knobs = (args.queue_dir, args.queue_lease, args.queue_max_attempts)
    if any(k is not None for k in queue_knobs) and args.backend != "queue":
        parser.error("--queue-* options only apply to --backend queue")
    scale = get_scale(args.scale)
    queue_config = None
    if args.queue_lease is not None or args.queue_max_attempts is not None:
        from repro.campaign import QueueConfig

        defaults = QueueConfig()
        queue_config = QueueConfig(
            lease_seconds=args.queue_lease
            if args.queue_lease is not None
            else defaults.lease_seconds,
            max_attempts=args.queue_max_attempts
            if args.queue_max_attempts is not None
            else defaults.max_attempts,
        )
    backend = (
        get_backend(
            args.backend,
            jobs=args.jobs,
            shards=args.shards,
            queue_dir=args.queue_dir,
            queue_config=queue_config,
        )
        if args.backend is not None
        else None
    )

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None

    if args.figure == "aggregate" and cache is None:
        parser.error("aggregate requires --cache-dir or --resume")

    chunks: list[str] = []
    names = list(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.perf_counter()
        if name == "aggregate":
            try:
                result = fig6_aggregate.aggregate_from_cache(
                    scale, cache=cache, fast_conv=args.fast_conv
                )
            except ValueError as exc:
                # Empty/typo'd cache dir, or artifacts of another scale/seed.
                parser.error(str(exc))
        elif name in _CAMPAIGN_FIGURES:
            # Snapshot the shared cache counters so the line printed after
            # this figure shows its own hits/stores, not the running total.
            before = replace(cache.stats) if cache is not None else None
            kwargs = {
                "jobs": args.jobs,
                "cache": cache,
                "force": args.force,
                "backend": backend,
                "fast_conv": args.fast_conv,
            }
            if name == "fig6":
                kwargs["stream"] = args.stream
            result = runners[name](scale, **kwargs)
        elif name == "fig9":
            result = runners[name](scale, jobs=args.jobs, backend=backend)
        else:
            result = runners[name](scale)
        elapsed = time.perf_counter() - t0
        text = result.render()
        print(text)
        print(f"[{name} done in {elapsed:.1f}s at scale={scale.name}]")
        if name == "aggregate":
            print(
                f"[aggregate {cache_dir}: {result.n_cases}/{len(result.specs)} "
                "cases summarized, nothing recomputed]"
            )
        if cache is not None and name in _CAMPAIGN_FIGURES:
            s, b = cache.stats, before
            corrupt = s.corrupt - b.corrupt
            print(
                f"[cache {cache_dir}: {s.hits - b.hits} hits, "
                f"{s.stores - b.stores} stored"
                + (f", {corrupt} corrupt recomputed" if corrupt else "")
                + "]"
            )
        print()
        chunks.append(text + "\n")
        if args.json is not None and name in ("fig6", "aggregate"):
            _write_aggregate_json(args.json, result.suite_aggregate())
        if args.csv_dir is not None and hasattr(result, "case"):
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            path = args.csv_dir / f"{name}_panel.csv"
            path.write_text(result.case.panel.to_csv())
            print(f"[wrote {path}]")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("a") as fh:
            fh.write("\n".join(chunks))
    return 0


# ---------------------------------------------------------------------- #
# the `campaign` command group: shard / worker / merge / verify-cache
# plus the queue fleet: queue-init / queue-worker / queue-status
# ---------------------------------------------------------------------- #


def _campaign_main(argv: list[str]) -> int:
    """The ``campaign`` command group: shard/worker/merge + queue fleet."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments campaign",
        description="Shard a campaign across workers/machines and merge "
        "the partial aggregates (bit-identical to a single-process run).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_shard = sub.add_parser(
        "shard", help="partition the fig6 suite into N shard files"
    )
    p_shard.add_argument(
        "--scale", default=None, choices=["quick", "default", "paper"]
    )
    p_shard.add_argument("--seed", type=int, default=20070913)
    p_shard.add_argument("--shards", type=int, default=2, metavar="N")
    p_shard.add_argument(
        "--out-dir", type=pathlib.Path, required=True, metavar="DIR"
    )
    p_shard.add_argument(
        "--fast-conv",
        action="store_true",
        help="shard the fast-precision-policy variant of the suite",
    )

    p_worker = sub.add_parser(
        "worker", help="execute one shard file against a cache directory"
    )
    p_worker.add_argument("manifest", type=pathlib.Path)
    p_worker.add_argument(
        "--cache-dir", type=pathlib.Path, required=True, metavar="DIR"
    )
    p_worker.add_argument("--jobs", type=int, default=1, metavar="N")
    p_worker.add_argument("--force", action="store_true")
    p_worker.add_argument(
        "--partial",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="partial output path (default: alongside the manifest)",
    )

    p_merge = sub.add_parser(
        "merge", help="fold shard partials into the suite aggregate"
    )
    p_merge.add_argument("partials", type=pathlib.Path, nargs="+")
    p_merge.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="also dump the merged aggregate as canonical JSON",
    )

    p_qinit = sub.add_parser(
        "queue-init",
        help="partition the fig6 suite onto a work-queue directory",
    )
    p_qinit.add_argument("queue_dir", type=pathlib.Path)
    p_qinit.add_argument(
        "--scale", default=None, choices=["quick", "default", "paper"]
    )
    p_qinit.add_argument("--seed", type=int, default=20070913)
    p_qinit.add_argument("--shards", type=int, default=2, metavar="N")
    p_qinit.add_argument(
        "--fast-conv",
        action="store_true",
        help="enqueue the fast-precision-policy variant of the suite",
    )

    p_qworker = sub.add_parser(
        "queue-worker",
        help="pull and execute shards from a work queue until it completes",
    )
    p_qworker.add_argument("queue_dir", type=pathlib.Path)
    p_qworker.add_argument(
        "--cache-dir", type=pathlib.Path, required=True, metavar="DIR"
    )
    p_qworker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable worker name for claims/logs (default: worker-<pid>)",
    )
    p_qworker.add_argument("--force", action="store_true")
    p_qworker.add_argument(
        "--lease", type=float, default=60.0, metavar="SEC",
        help="heartbeat lease before a claim counts as stale (default: 60)",
    )
    p_qworker.add_argument(
        "--poll", type=float, default=0.5, metavar="SEC",
        help="idle scan interval (default: 0.5)",
    )
    p_qworker.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per shard before poisoning (default: 3)",
    )
    p_qworker.add_argument(
        "--backoff", type=float, default=1.0, metavar="SEC",
        help="base of the exponential requeue backoff (default: 1)",
    )
    p_qworker.add_argument(
        "--no-reap",
        action="store_true",
        help="never requeue stale claims from this worker (a coordinator "
        "owns the reaper)",
    )
    p_qworker.add_argument(
        "--once",
        action="store_true",
        help="exit after completing one shard",
    )
    p_qworker.add_argument(
        "--no-wait",
        action="store_true",
        help="exit when nothing is claimable instead of polling until the "
        "queue completes",
    )
    p_qworker.add_argument(
        "--forever",
        action="store_true",
        help="keep polling after the queue drains (service-fleet mode: "
        "new single-case tasks may arrive at any time; exit via SIGTERM)",
    )

    p_qstatus = sub.add_parser(
        "queue-status",
        help="report a work queue's task states and poisoned shards",
    )
    p_qstatus.add_argument("queue_dir", type=pathlib.Path)
    p_qstatus.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable state (counts, per-task attempts, "
        "poison reports) as canonical JSON on stdout",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="select a suite with a case-set expression and aggregate it, "
        "computing only the cases the cache is missing",
    )
    p_sweep.add_argument(
        "expr",
        help="case-set expression, e.g. "
        "'graph[chol84,ge90] x ul[0.1-0.6/0.1] x seed[0-9]'",
    )
    p_sweep.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"artifact cache to aggregate from (default: {DEFAULT_CACHE_DIR})",
    )
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N")
    p_sweep.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="also dump the sweep aggregate as canonical JSON",
    )
    p_sweep.add_argument(
        "--fold",
        action="store_true",
        help="print the canonical folded form of the expression and exit",
    )
    p_sweep.add_argument(
        "--expand",
        action="store_true",
        help="print the expanded case list and exit",
    )
    p_sweep.add_argument(
        "--from-cache",
        action="store_true",
        help="aggregate only what the cache already holds (never compute); "
        "exit 1 and print the missing subset as a foldable expression "
        "when incomplete",
    )
    p_sweep.add_argument(
        "--force",
        action="store_true",
        help="recompute every case even when a valid artifact exists",
    )

    p_verify = sub.add_parser(
        "verify-cache",
        help="audit a cache directory for corrupt/orphan artifacts",
    )
    p_verify.add_argument(
        "--cache-dir", type=pathlib.Path, required=True, metavar="DIR"
    )
    p_verify.add_argument(
        "--scale",
        default=None,
        choices=["quick", "default", "paper"],
        help="also flag valid artifacts outside the fig6 suite at this "
        "scale/seed as orphans",
    )
    p_verify.add_argument("--seed", type=int, default=20070913)
    p_verify.add_argument(
        "--fast-conv",
        action="store_true",
        help="audit against the fast-precision-policy variant of the suite",
    )
    p_verify.add_argument(
        "--rebuild-index",
        action="store_true",
        help="rebuild the cache index by scan when the audit finds it "
        "stale or incomplete (the index is advisory: lookups stay "
        "correct either way)",
    )

    args = parser.parse_args(argv)

    if args.cmd == "shard":
        if args.shards < 1:
            parser.error("--shards must be ≥ 1")
        scale = get_scale(args.scale)
        cases = expand_suite(
            default_suite(), scale, base_seed=args.seed,
            fast_conv=args.fast_conv,
        )
        manifests = partition_cases(list(enumerate(cases)), args.shards)
        for manifest in manifests:
            path = manifest.write(args.out_dir)
            print(f"[wrote {path}: {len(manifest.cases)} cases]")
        print(
            f"[suite {manifests[0].suite_key[:12]}…: {len(cases)} cases "
            f"(scale={scale.name}, seed={args.seed}) across "
            f"{args.shards} shards]"
        )
        return 0

    if args.cmd == "worker":
        try:
            manifest = ShardManifest.read(args.manifest)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot read shard manifest {args.manifest}: {exc}")
        partial = run_shard(
            manifest, args.cache_dir, jobs=args.jobs, force=args.force
        )
        if args.partial is not None:
            args.partial.parent.mkdir(parents=True, exist_ok=True)
            args.partial.write_text(canonical_json(partial.to_payload()))
            path = args.partial
        else:
            path = partial.write(args.manifest.parent)
        print(
            f"[shard {manifest.shard_index}/{manifest.n_shards}: "
            f"{len(manifest.cases)} cases, {partial.computed} computed, "
            f"{partial.cached} cached → {path}]"
        )
        return 0

    if args.cmd == "merge":
        try:
            partials = [ShardPartial.read(p) for p in args.partials]
            merged = merge_partials(partials)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(str(exc))
        print(merged.render())
        print(
            f"[merged {len(merged.shards_present)}/{merged.n_shards} shards: "
            f"{merged.aggregate.n_cases}/{merged.suite_size} cases, "
            f"{merged.computed} computed, {merged.cached} cached]"
        )
        if args.json is not None:
            _write_aggregate_json(args.json, merged.aggregate)
        return 0

    if args.cmd == "queue-init":
        if args.shards < 1:
            parser.error("--shards must be ≥ 1")
        from repro.campaign import WorkQueue

        scale = get_scale(args.scale)
        cases = expand_suite(
            default_suite(), scale, base_seed=args.seed,
            fast_conv=args.fast_conv,
        )
        manifests = [
            m
            for m in partition_cases(list(enumerate(cases)), args.shards)
            if m.cases
        ]
        queue = WorkQueue(args.queue_dir)
        try:
            new, done = queue.enqueue(manifests)
        except ValueError as exc:
            parser.error(str(exc))
        print(
            f"[queue {args.queue_dir}: {new} shard(s) enqueued, {done} "
            f"already done — suite {manifests[0].suite_key[:12]}…, "
            f"{len(cases)} cases (scale={scale.name}, seed={args.seed})]"
        )
        print(f"[{queue.status().render()}]")
        return 0

    if args.cmd == "queue-worker":
        import os
        import signal
        import threading

        from repro.campaign import QueueConfig, WorkQueue, queue_worker

        config = QueueConfig(
            lease_seconds=args.lease,
            poll_seconds=args.poll,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff,
        )
        queue = WorkQueue(args.queue_dir, config)
        stop = threading.Event()

        def _drain(signum: int, frame: object) -> None:
            # First signal: finish-or-release the current claim, then
            # exit.  Second signal: the operator means it — abort hard.
            if stop.is_set():
                os._exit(4)
            stop.set()

        try:
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        except ValueError:  # pragma: no cover - non-main-thread callers
            pass
        # Announced only once the drain handlers are armed: anything that
        # waits for this line may SIGTERM the worker and rely on a
        # graceful finish-or-release instead of a default-action kill.
        print(f"[queue-worker on {args.queue_dir}: ready]", flush=True)
        report = queue_worker(
            queue,
            args.cache_dir,
            worker_id=args.worker_id,
            force=args.force,
            reap=not args.no_reap,
            once=args.once,
            wait=not args.no_wait,
            forever=args.forever,
            stop=stop,
        )
        print(report.render(), flush=True)
        print(f"[{queue.status().render()}]", flush=True)
        if stop.is_set() and not queue.is_complete():
            return 3  # drained mid-queue: claims released, work remains
        return 0

    if args.cmd == "queue-status":
        from repro.campaign import WorkQueue

        if not args.queue_dir.is_dir():
            parser.error(f"queue directory {args.queue_dir} does not exist")
        queue = WorkQueue(args.queue_dir)
        if args.json:
            payload = queue.status_payload()
            print(canonical_json(payload))
            return 0 if payload["poisoned"] == 0 else 1
        status = queue.status()
        print(f"[{args.queue_dir}: {status.render()}]")
        for task_id, report in queue.poisoned().items():
            print(
                f"  poisoned: {task_id} after {report.get('attempts', '?')} "
                f"attempt(s) — {report.get('reason', 'unknown')}"
            )
        return 0 if status.poisoned == 0 else 1

    if args.cmd == "sweep":
        from repro.caseset import CaseSetError
        from repro.caseset import parse as parse_caseset

        try:
            caseset = parse_caseset(args.expr)
        except CaseSetError as exc:
            parser.error(str(exc))
        if args.fold:
            print(caseset.fold())
            return 0
        cases = caseset.cases()
        if args.expand:
            for case in cases:
                print(case.name)
            print(f"[{len(cases)} case(s) — {caseset.fold()}]")
            return 0
        if args.from_cache:
            if not args.cache_dir.is_dir():
                parser.error(
                    f"cache directory {args.cache_dir} does not exist"
                )
            cache = ArtifactCache(args.cache_dir)
            missing = caseset - caseset.subset(
                c.key for c in cases if cache.has(c)
            )
            try:
                result = fig6_aggregate.aggregate_from_cache(
                    cases=cases, cache=cache
                )
            except ValueError as exc:
                parser.error(str(exc))
            print(result.render())
            print(
                f"[sweep {caseset.fold()}: {result.n_cases}/{len(cases)} "
                f"case(s) aggregated from {args.cache_dir}, "
                "nothing recomputed]"
            )
            if args.json is not None:
                _write_aggregate_json(args.json, result.suite_aggregate())
            if missing:
                print(f"[missing: {missing.fold()}]")
                return 1
            return 0
        # Compute path: one single-shard manifest through the campaign
        # runner — cached cases load, missing ones compute, and the merged
        # aggregate folds in case order, identically to the service's
        # streamed sweep over the same expression.
        manifest = partition_cases(list(enumerate(cases)), 1)[0]
        partial = run_shard(
            manifest, args.cache_dir, jobs=args.jobs, force=args.force
        )
        merged = merge_partials([partial])
        print(merged.render())
        print(
            f"[sweep {caseset.fold()}: "
            f"{merged.aggregate.n_cases}/{len(cases)} case(s), "
            f"{merged.computed} computed, {merged.cached} cached]"
        )
        if args.json is not None:
            _write_aggregate_json(args.json, merged.aggregate)
        return 0

    # verify-cache
    if not args.cache_dir.is_dir():
        parser.error(f"cache directory {args.cache_dir} does not exist")
    cache = ArtifactCache(args.cache_dir)
    expected = None
    if args.scale is not None:
        scale = get_scale(args.scale)
        expected = expand_suite(
            default_suite(), scale, base_seed=args.seed,
            fast_conv=args.fast_conv,
        )
    audit = cache.verify(expected)
    print(f"[{args.cache_dir}: {audit.summary()}]")
    for path, reason in audit.corrupt:
        print(f"  corrupt: {path.name} ({reason})")
    for path, reason in audit.orphans:
        print(f"  orphan:  {path.name} ({reason})")
    for path in audit.stale_temp:
        print(f"  stale:   {path.name}")
    for key, reason in audit.index_stale:
        print(f"  index-stale: {key[:12]} ({reason})")
    for path in audit.unindexed:
        print(f"  unindexed: {path.name}")
    if not audit.index_consistent and args.rebuild_index:
        index = cache.rebuild_index()
        print(
            f"[index rebuilt: generation {index.generation}, "
            f"{len(index.entries)} entries]"
        )
    return 0 if audit.ok else 1


# ---------------------------------------------------------------------- #
# the `serve` command: the robustness-as-a-service HTTP layer
# ---------------------------------------------------------------------- #


def _serve_main(argv: list[str]) -> int:
    """The ``serve`` command: run the robustness query service."""
    from repro.campaign import QueueConfig
    from repro.service import AdmissionConfig, ServiceConfig, serve

    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve robustness metrics over HTTP from an artifact "
        "cache; misses are enqueued onto the campaign queue fleet.",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, required=True, metavar="DIR",
        help="artifact cache to answer from (and the fleet writes into)",
    )
    parser.add_argument(
        "--queue-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="work-queue directory for miss dispatch "
        "(default: <cache-dir>-queue)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks a free one; the address is printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fleet workers to spawn and babysit (0 = rely on external "
        "`campaign queue-worker --forever` processes)",
    )
    parser.add_argument(
        "--deadline", type=float, default=60.0, metavar="SEC",
        help="per-request compute budget for cache misses (default: 60)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.05, metavar="SEC",
        help="artifact poll interval while a miss computes (default: 0.05)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admitted requests in flight before arrivals wait (default: 8)",
    )
    parser.add_argument(
        "--max-waiting", type=int, default=16, metavar="N",
        help="requests allowed to wait for a slot; beyond this they are "
        "shed with 429 (default: 16)",
    )
    parser.add_argument(
        "--admit-wait", type=float, default=0.5, metavar="SEC",
        help="longest a request waits for a slot before shedding "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--lease", type=float, default=60.0, metavar="SEC",
        help="fleet heartbeat lease (default: 60)",
    )
    parser.add_argument(
        "--queue-poll", type=float, default=0.25, metavar="SEC",
        help="fleet worker idle scan interval (default: 0.25)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per task before poisoning (default: 3)",
    )
    parser.add_argument(
        "--backoff", type=float, default=1.0, metavar="SEC",
        help="base of the exponential requeue backoff (default: 1)",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be ≥ 0")
    queue_dir = args.queue_dir
    if queue_dir is None:
        queue_dir = args.cache_dir.with_name(args.cache_dir.name + "-queue")
    config = ServiceConfig(
        cache_dir=args.cache_dir,
        queue_dir=queue_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        deadline_seconds=args.deadline,
        poll_seconds=args.poll,
        admission=AdmissionConfig(
            max_inflight=args.max_inflight,
            max_waiting=args.max_waiting,
            wait_seconds=args.admit_wait,
        ),
        queue=QueueConfig(
            lease_seconds=args.lease,
            poll_seconds=args.queue_poll,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff,
        ),
    )
    service = serve(
        config,
        on_bound=lambda svc: print(
            f"[serving http://{args.host}:{svc.port} — cache "
            f"{args.cache_dir}, queue {queue_dir}, "
            f"{args.workers} worker(s); SIGTERM drains gracefully]",
            flush=True,
        ),
    )
    print(f"[serve drained: {service.stats.summary()}]", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
