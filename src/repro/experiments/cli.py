"""Command-line entry point: ``repro-experiments <figure> [--scale …]``.

Runs any figure of the paper (or the whole set) and prints the text report.
Example::

    repro-experiments fig6 --scale default
    REPRO_SCALE=paper repro-experiments all
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable

from repro.experiments import fig1_precision, fig2_visual, fig6_aggregate, fig78_clt
from repro.experiments import fig345_panels, fig9_slack_quadrants
from repro.experiments.scale import get_scale

__all__ = ["main"]


def _runners() -> dict[str, Callable[[object], object]]:
    return {
        "fig1": fig1_precision.run,
        "fig2": fig2_visual.run,
        "fig3": fig345_panels.run_fig3,
        "fig4": fig345_panels.run_fig4,
        "fig5": fig345_panels.run_fig5,
        "fig6": fig6_aggregate.run,
        "fig7": fig78_clt.run_fig7,
        "fig8": fig78_clt.run_fig8,
        "fig9": fig9_slack_quadrants.run,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    runners = _runners()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of Canon & Jeannot (2007).",
    )
    parser.add_argument(
        "figure",
        choices=[*runners.keys(), "all"],
        help="figure to reproduce, or 'all'",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["quick", "default", "paper"],
        help="population scale (default: env REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="also append the rendered reports to this file",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="dump metric-panel CSVs here (panel figures: fig3/fig4/fig5)",
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)

    chunks: list[str] = []
    names = list(runners) if args.figure == "all" else [args.figure]
    for name in names:
        t0 = time.perf_counter()
        result = runners[name](scale)
        elapsed = time.perf_counter() - t0
        text = result.render()
        print(text)
        print(f"[{name} done in {elapsed:.1f}s at scale={scale.name}]")
        print()
        chunks.append(text + "\n")
        if args.csv_dir is not None and hasattr(result, "case"):
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            path = args.csv_dir / f"{name}_panel.csv"
            path.write_text(result.case.panel.to_csv())
            print(f"[wrote {path}]")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("a") as fh:
            fh.write("\n".join(chunks))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
