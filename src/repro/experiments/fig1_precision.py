"""Figure 1 — precision of the independence assumption vs graph size.

For each graph size the paper measures the Kolmogorov–Smirnov and
Cramér–von-Mises(area) distances between the analytic makespan CDF (the
classical independence-assumption evaluation) and the empirical CDF of
100 000 Monte-Carlo realizations, at UL = 1.1, averaged over schedules.
Both errors grow with graph size — the reason the paper restricts its panel
suite to ≤ 100-node graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.classical import classical_makespan
from repro.analysis.distance import cm_distance, ks_distance
from repro.analysis.montecarlo import sample_makespans
from repro.experiments.scale import Scale, get_scale
from repro.platform.workload import random_workload
from repro.schedule.random_schedule import random_schedule
from repro.stochastic.model import StochasticModel
from repro.util.rng import spawn_generators
from repro.util.tables import format_table

__all__ = ["Fig1Result", "run"]


@dataclass(frozen=True)
class Fig1Result:
    """Rows of (graph size, mean KS, mean CM)."""

    sizes: tuple[int, ...]
    ks: tuple[float, ...]
    cm: tuple[float, ...]
    ul: float
    n_realizations: int

    def render(self) -> str:
        """Figure 1 as a text table."""
        header = (
            f"Fig. 1 — precision of the independence assumption "
            f"(UL={self.ul:g}, {self.n_realizations} realizations)"
        )
        rows = [
            (n, ks, cm) for n, ks, cm in zip(self.sizes, self.ks, self.cm)
        ]
        return header + "\n" + format_table(["graph size", "KS", "CM"], rows)


def run(
    scale: Scale | str | None = None,
    ul: float = 1.1,
    schedules_per_size: int = 3,
    seed: int = 20070910,
) -> Fig1Result:
    """Reproduce Figure 1 at the given scale."""
    scale = get_scale(scale)
    model = StochasticModel(ul=ul, grid_n=scale.grid_n)
    ks_out: list[float] = []
    cm_out: list[float] = []
    rngs = spawn_generators(seed, len(scale.fig1_sizes))
    for size, rng in zip(scale.fig1_sizes, rngs):
        ks_vals, cm_vals = [], []
        for _ in range(schedules_per_size):
            workload = random_workload(size, _procs(size), rng=rng)
            schedule = random_schedule(workload, rng)
            analytic = classical_makespan(schedule, model)
            mc = sample_makespans(
                schedule, model, rng, n_realizations=scale.mc_realizations
            )
            ks_vals.append(ks_distance(analytic, mc))
            cm_vals.append(cm_distance(analytic, mc))
        ks_out.append(float(np.mean(ks_vals)))
        cm_out.append(float(np.mean(cm_vals)))
    return Fig1Result(
        sizes=tuple(scale.fig1_sizes),
        ks=tuple(ks_out),
        cm=tuple(cm_out),
        ul=ul,
        n_realizations=scale.mc_realizations,
    )


def _procs(n_tasks: int) -> int:
    from repro.experiments.cases import procs_for_size

    return procs_for_size(n_tasks)
