"""Experiment harness reproducing every figure of the paper.

Each ``figN_*`` module exposes a ``run(scale)`` function returning a result
object with the figure's underlying data series and a ``render()`` method
producing the monospace report recorded in ``EXPERIMENTS.md``.  The
:class:`~repro.experiments.scale.Scale` object controls population sizes so
the whole harness runs in minutes at ``quick`` scale and reproduces the
paper's counts at ``paper`` scale (env var ``REPRO_SCALE``).
"""

from repro.experiments.scale import PAPER, QUICK, DEFAULT, Scale, get_scale
from repro.experiments.cases import CaseSpec, build_workload, default_suite

__all__ = [
    "Scale",
    "QUICK",
    "DEFAULT",
    "PAPER",
    "get_scale",
    "CaseSpec",
    "build_workload",
    "default_suite",
]
