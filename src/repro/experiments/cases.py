"""The experiment case suite (paper §V).

The paper generated 52 cases across graph families {random, Cholesky,
Gaussian elimination}, sizes n ∈ {10, 30, 100, 1000} and uncertainty levels
UL ∈ {1.01, 1.1}, with up to 10 instances per random size, then kept the 24
cases with ≤ 100 nodes for the Figure 6 aggregation (1000-node cases being
indicative only, since the independence assumption degrades there).

:func:`default_suite` reproduces that 24-case panel:

* random: n ∈ {10, 30, 100} × UL ∈ {1.01, 1.1} × 2 instances   → 12 cases
* Cholesky: b ∈ {3, 5, 7} (10/35/84 tasks) × UL ∈ {1.01, 1.1}  →  6 cases
* Gaussian elim.: b ∈ {4, 7, 13} (9/27/90 tasks) × UL          →  6 cases

Processor counts follow the paper's figures: 3 for ≈10-task graphs, 8 for
≈30, 16 for ≈100.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Literal

from repro.platform.workload import (
    Workload,
    cholesky_workload,
    ge_workload,
    random_workload,
)
from repro.dag.cholesky import cholesky_task_count
from repro.dag.gaussian_elim import ge_task_count

__all__ = ["CaseSpec", "build_workload", "default_suite", "procs_for_size"]

Kind = Literal["random", "cholesky", "ge"]


def procs_for_size(n_tasks: int) -> int:
    """Processor count used by the paper for a given graph size."""
    if n_tasks <= 15:
        return 3
    if n_tasks <= 50:
        return 8
    return 16


@dataclass(frozen=True)
class CaseSpec:
    """One experiment case: graph family + size + UL + instance seed."""

    kind: Kind
    param: int  # n_tasks for random, b for cholesky/ge
    ul: float
    instance: int = 0

    @property
    def n_tasks(self) -> int:
        """Task count of this case's graph."""
        if self.kind == "random":
            return self.param
        if self.kind == "cholesky":
            return cholesky_task_count(self.param)
        return ge_task_count(self.param)

    @property
    def m(self) -> int:
        """Processor count of this case."""
        return procs_for_size(self.n_tasks)

    @property
    def name(self) -> str:
        """Readable case identifier."""
        return f"{self.kind}_n{self.n_tasks}_m{self.m}_ul{self.ul:g}_i{self.instance}"

    def seed(self, base_seed: int = 0) -> int:
        """Deterministic per-case seed derived from a suite-level seed.

        Uses CRC32 of the case name (not Python's ``hash``, which is salted
        per process) so suites are reproducible across runs and machines.
        """
        return (zlib.crc32(self.name.encode()) ^ (base_seed * 0x9E3779B1)) % (2**31)


def build_workload(spec: CaseSpec, base_seed: int = 0) -> Workload:
    """Instantiate the workload of ``spec`` (deterministic per seed)."""
    seed = spec.seed(base_seed)
    if spec.kind == "random":
        return random_workload(spec.param, spec.m, rng=seed)
    if spec.kind == "cholesky":
        return cholesky_workload(spec.param, spec.m, rng=seed)
    if spec.kind == "ge":
        return ge_workload(spec.param, spec.m, rng=seed)
    raise ValueError(f"unknown case kind {spec.kind!r}")


def default_suite(uls: tuple[float, ...] = (1.01, 1.1)) -> list[CaseSpec]:
    """The paper's 24-case (≤100 nodes) suite."""
    cases: list[CaseSpec] = []
    for ul in uls:
        for n in (10, 30, 100):
            for instance in (0, 1):
                cases.append(CaseSpec("random", n, ul, instance))
        for b in (3, 5, 7):
            cases.append(CaseSpec("cholesky", b, ul))
        for b in (4, 7, 13):
            cases.append(CaseSpec("ge", b, ul))
    return cases
