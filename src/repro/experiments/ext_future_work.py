"""Extension experiments for the paper's future-work section (§VIII).

Two of the paper's open questions are directly testable with this library:

* **Pareto-front correlations** — "Our results are indeed obtained with
  random schedules which only give an indication of correlation between the
  metrics.  However, at some point (for low makespan schedules) there could
  be some trade-off to find."  :func:`run_pareto` measures the E(M)–σ_M
  Pearson correlation over the whole random population and over its
  best-makespan decile, and extracts the Pareto-optimal schedules.

* **Variable uncertainty levels** — "if we do not take a constant UL for a
  given graph (which will break the equivalence between task duration mean
  and standard deviation), we believe that the makespan could be a
  misleading criteria."  :func:`run_variable_ul` draws a per-task UL from
  {low, high} and compares the makespan↔σ_M correlation against the
  fixed-UL baseline: under variable UL the correlation collapses, confirming
  the conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.montecarlo import sample_makespans
from repro.core.correlation import pearson
from repro.experiments.scale import Scale, get_scale
from repro.platform.workload import random_workload
from repro.schedule.random_schedule import random_schedules
from repro.stochastic.model import StochasticModel
from repro.util.rng import as_generator
from repro.util.tables import format_table

__all__ = ["ParetoResult", "VariableUlResult", "run_pareto", "run_variable_ul"]


@dataclass(frozen=True)
class ParetoResult:
    """Population vs best-decile vs Pareto-front correlation."""

    makespans: np.ndarray
    stds: np.ndarray
    corr_all: float
    corr_best_decile: float
    pareto_indices: tuple[int, ...]

    def render(self) -> str:
        """Report the correlations and the Pareto-optimal points."""
        rows = [
            (int(i), float(self.makespans[i]), float(self.stds[i]))
            for i in self.pareto_indices
        ]
        return (
            "Ext. — Pareto-front study (paper §VIII, random population):\n"
            f"corr(E(M), σ_M) over all schedules:      {self.corr_all:+.3f}\n"
            f"corr(E(M), σ_M) over best-E(M) decile:   {self.corr_best_decile:+.3f}\n"
            f"Pareto-optimal schedules (E(M) vs σ_M): {len(self.pareto_indices)}\n"
            + format_table(["schedule", "E(M)", "σ_M"], rows)
        )


@dataclass(frozen=True)
class VariableUlResult:
    """Fixed-UL vs variable-UL makespan↔robustness correlation."""

    corr_fixed: float
    corr_variable: float
    ul_low: float
    ul_high: float

    def render(self) -> str:
        """Report the correlation collapse under variable UL."""
        return (
            "Ext. — variable uncertainty level (paper §VIII conjecture):\n"
            f"corr(E(M), σ_M) with fixed UL = {self.ul_high:g}:          "
            f"{self.corr_fixed:+.3f}\n"
            f"corr(E(M), σ_M) with per-task UL ∈ {{{self.ul_low:g}, {self.ul_high:g}}}: "
            f"{self.corr_variable:+.3f}\n"
            "→ variable UL breaks the mean↔σ proportionality, so makespan\n"
            "  becomes a misleading robustness criterion, as conjectured."
        )


def run_pareto(
    scale: Scale | str | None = None,
    n_tasks: int = 20,
    m: int = 4,
    seed: int = 20070915,
) -> ParetoResult:
    """E(M)–σ_M correlation across the population vs near the Pareto front."""
    scale = get_scale(scale)
    model = StochasticModel(ul=1.1, grid_n=scale.grid_n)
    workload = random_workload(n_tasks, m, rng=seed)
    n_schedules = max(scale.n_random(n_tasks), 50)
    rng = as_generator(seed + 1)
    makespans, stds = [], []
    for schedule in random_schedules(workload, n_schedules, rng):
        samples = sample_makespans(schedule, model, rng, n_realizations=2_000)
        makespans.append(float(samples.mean()))
        stds.append(float(samples.std()))
    ms = np.asarray(makespans)
    sd = np.asarray(stds)

    corr_all = pearson(ms, sd)
    decile = ms <= np.percentile(ms, 10)
    corr_best = pearson(ms[decile], sd[decile])

    order = np.argsort(ms)
    pareto: list[int] = []
    best_sd = np.inf
    for i in order:
        if sd[i] < best_sd - 1e-12:
            pareto.append(int(i))
            best_sd = sd[i]
    return ParetoResult(
        makespans=ms,
        stds=sd,
        corr_all=corr_all,
        corr_best_decile=corr_best,
        pareto_indices=tuple(pareto),
    )


def run_variable_ul(
    scale: Scale | str | None = None,
    n_tasks: int = 20,
    m: int = 4,
    ul_low: float = 1.01,
    ul_high: float = 1.6,
    seed: int = 20070916,
) -> VariableUlResult:
    """Fixed-UL vs per-task-UL correlation between E(M) and σ_M."""
    scale = get_scale(scale)
    model = StochasticModel(ul=ul_high, grid_n=scale.grid_n)
    workload = random_workload(n_tasks, m, rng=seed)
    rng = as_generator(seed + 1)
    # One fixed per-task UL assignment shared by all schedules: most tasks
    # almost deterministic, a minority very noisy — the configuration that
    # decouples a schedule's length from its exposure to uncertainty.
    task_ul = np.where(rng.random(n_tasks) < 0.75, ul_low, ul_high)
    n_schedules = max(scale.n_random(n_tasks), 50)
    ms_f, sd_f, ms_v, sd_v = [], [], [], []
    for schedule in random_schedules(workload, n_schedules, rng):
        fixed = sample_makespans(schedule, model, rng, n_realizations=2_000)
        variable = sample_makespans(
            schedule, model, rng, n_realizations=2_000, task_ul=task_ul
        )
        ms_f.append(float(fixed.mean()))
        sd_f.append(float(fixed.std()))
        ms_v.append(float(variable.mean()))
        sd_v.append(float(variable.std()))
    return VariableUlResult(
        corr_fixed=pearson(np.asarray(ms_f), np.asarray(sd_f)),
        corr_variable=pearson(np.asarray(ms_v), np.asarray(sd_v)),
        ul_low=ul_low,
        ul_high=ul_high,
    )
