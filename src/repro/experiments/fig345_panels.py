"""Figures 3–5 — the per-case metric-correlation panels.

Each figure is one case: thousands of random schedules plus the three
heuristics (HEFT, BIL, Hyb.BMCT), all eight metrics per schedule, rendered
as an 8×8 Pearson matrix (the paper's upper triangle) plus the heuristics'
metric rows (the highlighted points of the paper's scatter plots):

* Figure 3 — Cholesky, 10 tasks, 3 processors, UL = 1.01;
* Figure 4 — random graph, 30 tasks, 8 processors, UL = 1.01;
* Figure 5 — Gaussian elimination, ≈103 tasks, 16 processors, UL = 1.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign import ArtifactCache, Campaign, CampaignCase, ExecutionBackend
from repro.core.correlation import pearson
from repro.core.study import CaseResult
from repro.experiments.cases import CaseSpec
from repro.experiments.scale import Scale, get_scale
from repro.util.tables import format_matrix
from repro.core.metrics import METRIC_NAMES

__all__ = ["PanelResult", "run_fig3", "run_fig4", "run_fig5", "run_panel"]

FIG3_SPEC = CaseSpec("cholesky", 3, 1.01)
FIG4_SPEC = CaseSpec("random", 30, 1.01)
FIG5_SPEC = CaseSpec("ge", 14, 1.1)


@dataclass(frozen=True)
class PanelResult:
    """One panel: case result + the derived §VII correlation."""

    figure: str
    spec: CaseSpec
    case: CaseResult
    rel_prob_over_m_vs_std: float

    def render(self) -> str:
        """Pearson matrix + heuristic rows, as text."""
        lines = [
            f"{self.figure} — {self.spec.name}: "
            f"{self.case.panel.n_schedules - len(self.case.heuristic_metrics)} random schedules "
            f"+ {sorted(self.case.heuristic_metrics)}",
            "",
            "Pearson coefficients (oriented metrics, random schedules):",
            format_matrix(self.case.pearson, list(METRIC_NAMES)),
            "",
            f"corr( R(γ)/E(M), σ_M ) = {self.rel_prob_over_m_vs_std:+.3f}   (paper §VII: ≈ ±0.998)",
            "",
            "Heuristic rows (raw metric values):",
            self.case.panel.rows_table(only_labeled=True),
        ]
        return "\n".join(lines)


def run_panel(
    figure: str,
    spec: CaseSpec,
    scale: Scale | str | None = None,
    seed: int = 20070912,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    force: bool = False,
    backend: ExecutionBackend | None = None,
    fast_conv: bool = False,
) -> PanelResult:
    """Evaluate one panel case at the given scale.

    The case runs through the campaign layer on any execution backend:
    with ``cache`` set, a previously computed artifact for the same
    spec/scale/seed is reused instead of recomputing (``force``
    overrides).  ``fast_conv`` opts into the fast precision policy (its
    artifact hashes to a different key, so caches never collide).
    """
    scale = get_scale(scale)
    n_random = scale.n_random(spec.n_tasks)
    campaign_case = CampaignCase(
        spec=spec,
        base_seed=seed,
        n_random=n_random,
        grid_n=scale.grid_n,
        fast_conv=fast_conv,
    )
    campaign = Campaign(
        (campaign_case,), jobs=jobs, cache=cache, force=force, backend=backend
    )
    case = campaign.run()[0]
    # §VII: R(γ)/E(M) against σ_M over the random schedules only.
    k = n_random
    rel_over_m = case.panel.oriented_rel_prob_over_makespan()[:k]
    std = case.panel.column("makespan_std")[:k]
    return PanelResult(
        figure=figure,
        spec=spec,
        case=case,
        rel_prob_over_m_vs_std=pearson(rel_over_m, std),
    )


def run_fig3(
    scale: Scale | str | None = None, seed: int = 20070912, **campaign_opts
) -> PanelResult:
    """Figure 3 panel (Cholesky 10 tasks / 3 procs / UL 1.01)."""
    return run_panel("Fig. 3", FIG3_SPEC, scale, seed, **campaign_opts)


def run_fig4(
    scale: Scale | str | None = None, seed: int = 20070912, **campaign_opts
) -> PanelResult:
    """Figure 4 panel (random 30 tasks / 8 procs / UL 1.01)."""
    return run_panel("Fig. 4", FIG4_SPEC, scale, seed, **campaign_opts)


def run_fig5(
    scale: Scale | str | None = None, seed: int = 20070912, **campaign_opts
) -> PanelResult:
    """Figure 5 panel (Gaussian elimination ≈103 tasks / 16 procs / UL 1.1)."""
    return run_panel("Fig. 5", FIG5_SPEC, scale, seed, **campaign_opts)
