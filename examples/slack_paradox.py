#!/usr/bin/env python
"""The slack paradox (paper Figure 9): slack does not imply robustness.

Builds the four join-graph schedules of the paper's discussion — every
combination of {slack-rich, slack-free} × {robust, non-robust} — and
verifies each lands in its quadrant, including the max-concentration effect
(the makespan of many parallel i.i.d. branches is *more* stable than a
single chain of the same work).

Run:  python examples/slack_paradox.py
"""

import numpy as np

import repro
from repro.experiments.fig9_slack_quadrants import build_quadrant_schedules
from repro.util.tables import format_table


def main() -> None:
    model = repro.StochasticModel(ul=1.5)
    workload, schedules = build_quadrant_schedules(n_branches=12, rng=7)

    rows = []
    for label, schedule in schedules.items():
        sa = repro.slack_analysis(schedule, model)
        samples = repro.sample_makespans(schedule, model, rng=1, n_realizations=50_000)
        rows.append((label, samples.mean(), sa.slack_sum, samples.std(),
                     samples.std() / samples.mean()))

    print("join graph, 12 branches + sink, UL = 1.5:\n")
    print(format_table(["schedule", "E(M)", "slack", "sigma_M", "CV"], rows))

    print(
        "\nreading:\n"
        "  a_spread     — slack-rich AND robust (max of many i.i.d. branches concentrates)\n"
        "  b_balanced   — slack-free AND robust (balanced sums, CLT)\n"
        "  c_serial     — slack-free and NON-robust (variances add up)\n"
        "  d_unbalanced — slack-rich and NON-robust (idle processor ≠ stability)\n"
        "\n⇒ slack and robustness are independent axes; the paper's σ_M-style\n"
        "  dispersion metrics measure robustness, slack does not."
    )

    # The max-concentration effect in isolation: max of k i.i.d. durations.
    rv = repro.beta_rv(10.0, 15.0)
    rows = [(k, rv.max_iid(k).mean(), rv.max_iid(k).std()) for k in (1, 2, 4, 16, 64)]
    print("\nmax of k i.i.d. Beta(2,5) durations on [10, 15]:")
    print(format_table(["k", "mean", "std"], rows))
    print("→ the std collapses as k grows (the paper's argument for schedule a).")


if __name__ == "__main__":
    main()
