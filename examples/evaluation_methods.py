#!/usr/bin/env python
"""Compare the four makespan-distribution evaluation engines.

The paper's methodology section weighs three analytic approximations
(classical independence assumption, Dodin series-parallel reduction, Spelde
normal/CLT) against Monte-Carlo ground truth.  This example runs all four
on the same schedule and reports moments, KS error and runtime — including
a diamond-graph micro-case where Dodin is visibly more accurate because it
factors out shared history before taking maxima.

Run:  python examples/evaluation_methods.py
"""

import time

import numpy as np

import repro
from repro.util.tables import format_table


def compare(schedule, model, n_mc=100_000, label=""):
    reference = repro.sample_makespans(schedule, model, rng=0, n_realizations=n_mc)
    rows = []
    for name, fn in (
        ("classical", repro.classical_makespan),
        ("dodin", repro.dodin_makespan),
        ("spelde", repro.spelde_makespan),
    ):
        t0 = time.perf_counter()
        rv = fn(schedule, model)
        dt = time.perf_counter() - t0
        mean = rv.mean() if callable(getattr(rv, "mean", None)) else rv.mean
        std = rv.std() if callable(getattr(rv, "std", None)) else rv.std
        rows.append((name, mean, std, repro.ks_distance(rv, reference), dt * 1000))
    rows.append(("MC reference", reference.mean(), reference.std(), 0.0, float("nan")))
    print(f"\n{label}")
    print(format_table(["engine", "E(M)", "sigma", "KS vs MC", "time [ms]"], rows))


def main() -> None:
    model = repro.StochasticModel(ul=1.1)

    # A realistic case: Cholesky 35 tasks on 4 machines, HEFT schedule.
    workload = repro.cholesky_workload(b=5, m=4, rng=3)
    compare(repro.heft(workload), model, label="Cholesky b=5 (35 tasks), HEFT:")

    # The shared-history stress case: a diamond with a long stochastic source.
    g = repro.fork_join_dag(2)  # 0 → {1,2} → 3
    comp = np.repeat(np.array([[40.0], [10.0], [10.0], [5.0]]), 2, axis=1)
    w = repro.Workload(g, repro.Platform.uniform(2), comp)
    s = repro.Schedule.from_proc_orders(w, [0, 0, 1, 0], [(0, 1, 3), (2,)])
    big = repro.StochasticModel(ul=2.0, grid_n=129)
    compare(s, big, label="diamond with stochastic source (UL=2.0):")
    print(
        "\n→ on the diamond, `classical` treats the two branch finish times as\n"
        "  independent although both contain the source's randomness; `dodin`\n"
        "  factors the source out first and lands on the Monte-Carlo answer."
    )


if __name__ == "__main__":
    main()
