#!/usr/bin/env python
"""Mini metric-correlation study (the paper's core experiment, one case).

Generates a random 20-task workload, evaluates hundreds of random schedules
plus the three paper heuristics, and prints the 8×8 Pearson matrix with the
paper's metric orientation — the single-case analogue of Figures 3–5.

Run:  python examples/metric_correlation_study.py
"""

import repro


def main() -> None:
    workload = repro.random_workload(20, 4, rng=1234)
    model = repro.StochasticModel(ul=1.1)

    result = repro.evaluate_case(
        workload, model, n_random=400, rng=5, name="random20_demo"
    )

    print(f"case {result.name}: 400 random schedules + HEFT/BIL/Hyb.BMCT\n")
    print("Pearson correlations (oriented so smaller = better for every metric):")
    print(result.panel.pearson_table())

    print("\nheuristic rows (raw values):")
    print(result.panel.rows_table(only_labeled=True))

    names = repro.METRIC_NAMES
    p = result.pearson
    block = ("makespan_std", "makespan_entropy", "lateness", "abs_prob")
    print("\npaper's headline block (should all be ≈ +1):")
    for a in block:
        for b in block:
            if a < b:
                print(f"  corr({a}, {b}) = {p[names.index(a), names.index(b)]:+.3f}")

    slack_std_corr = p[names.index("slack_sum"), names.index("makespan_std")]
    print(f"\nslack vs sigma_M = {slack_std_corr:+.3f}  (slack is NOT a robustness proxy)")


if __name__ == "__main__":
    main()
