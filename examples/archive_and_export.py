#!/usr/bin/env python
"""Archive a campaign artifact and export it to external tools.

Demonstrates the :mod:`repro.io` layer: JSON round-trips (workloads and
schedules reload bit-exactly, with start times recomputed as an integrity
check), Graphviz DOT export of the application and disjunctive graphs, CSV
traces for spreadsheet/pandas analysis, and the plain-text Gantt chart.

Run:  python examples/archive_and_export.py [output_dir]
"""

import pathlib
import sys

import repro
from repro.io import (
    disjunctive_to_dot,
    schedule_from_json,
    schedule_to_json,
    schedule_trace_csv,
    taskgraph_to_dot,
    workload_to_json,
)


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
    out_dir.mkdir(parents=True, exist_ok=True)

    workload = repro.cholesky_workload(b=3, m=3, rng=11)
    model = repro.StochasticModel(ul=1.1)
    schedule = repro.heft(workload)

    # 1. Archive as JSON and prove the round-trip.
    (out_dir / "workload.json").write_text(workload_to_json(workload))
    (out_dir / "schedule.json").write_text(schedule_to_json(schedule))
    reloaded = schedule_from_json((out_dir / "schedule.json").read_text())
    assert reloaded.makespan == schedule.makespan
    print(f"archived + reloaded schedule, makespan {reloaded.makespan:.2f}")

    # 2. Graphviz exports (render with `dot -Tpng file.dot -o file.png`).
    (out_dir / "graph.dot").write_text(taskgraph_to_dot(workload.graph))
    (out_dir / "disjunctive.dot").write_text(disjunctive_to_dot(schedule))

    # 3. CSV trace: deterministic replay + 5 sampled realizations.
    (out_dir / "trace.csv").write_text(
        schedule_trace_csv(schedule, model, n_realizations=5, rng=0)
    )

    # 4. Metric panel of a small campaign, as CSV.
    case = repro.evaluate_case(workload, model, n_random=50, rng=3)
    (out_dir / "panel.csv").write_text(case.panel.to_csv())

    print(f"wrote {len(list(out_dir.iterdir()))} artifacts to {out_dir}/")

    # 5. And a terminal Gantt chart, because it is 2007 somewhere.
    print("\nHEFT schedule:")
    print(schedule.gantt_text(width=68))


if __name__ == "__main__":
    main()
