#!/usr/bin/env python
"""Quickstart: schedule a stochastic DAG and measure its robustness.

Walks the full pipeline on the paper's Figure-3 workload (tiled Cholesky,
10 tasks, 3 heterogeneous machines):

1. build the workload (graph + platform + unrelated cost matrix);
2. define the uncertainty model (UL = 1.1, Beta(2,5) durations);
3. schedule with HEFT;
4. evaluate the makespan *distribution* (analytic + Monte Carlo);
5. compute all eight robustness metrics of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A tiled-Cholesky workload: b=3 tile columns → 10 tasks, 3 machines.
    workload = repro.cholesky_workload(b=3, m=3, rng=2007)
    print(f"workload: {workload.graph.name}, {workload.n_tasks} tasks on {workload.m} machines")

    # 2. The paper's uncertainty model: every duration is a Beta(2,5) on
    #    [min, UL·min].
    model = repro.StochasticModel(ul=1.1)

    # 3. Schedule with HEFT (BIL, Hyb.BMCT, CPOP, greedy-EFT also available).
    schedule = repro.heft(workload)
    print(f"HEFT deterministic makespan: {schedule.makespan:.2f}")

    # 4a. Analytic makespan distribution (the paper's classical method).
    rv = repro.classical_makespan(schedule, model)
    print(f"analytic:    E(M) = {rv.mean():.2f}, sigma_M = {rv.std():.3f}")

    # 4b. Monte-Carlo ground truth (100 000 eager replays, vectorized).
    samples = repro.sample_makespans(schedule, model, rng=0, n_realizations=100_000)
    print(f"monte carlo: E(M) = {samples.mean():.2f}, sigma_M = {samples.std():.3f}")
    print(f"KS(analytic, MC) = {repro.ks_distance(rv, samples):.4f}")

    # 5. All robustness metrics of the paper in one call.
    metrics = repro.evaluate_schedule(schedule, model)
    print("\nrobustness metrics (paper §IV):")
    for name in repro.METRIC_NAMES:
        print(f"  {name:18s} {getattr(metrics, name):10.4f}")

    # Bonus: probability the makespan stays within 0.5% of its expectation.
    within = rv.prob_between(rv.mean() * 0.995, rv.mean() * 1.005)
    print(f"\nP(M within ±0.5% of mean) = {within:.3f}")


if __name__ == "__main__":
    main()
