#!/usr/bin/env python
"""Compare all scheduling heuristics on makespan *and* robustness.

Reproduces the paper's §VI observation that makespan-centric heuristics
(HEFT, BIL, Hyb.BMCT) also deliver the best robustness — on a Gaussian
elimination workload (27 tasks, 8 machines) against a population of random
schedules.

Run:  python examples/heuristic_comparison.py
"""

import numpy as np

import repro
from repro.util.tables import format_table


def main() -> None:
    workload = repro.ge_workload(b=7, m=8, rng=42)
    model = repro.StochasticModel(ul=1.1)

    heuristics = {
        "HEFT": repro.heft,
        "BIL": repro.bil,
        "Hyb.BMCT": repro.bmct,
        "CPOP": repro.cpop,
        "greedy-EFT": repro.greedy_eft,
    }

    rows = []
    for name, fn in heuristics.items():
        schedule = fn(workload)
        m = repro.evaluate_schedule(schedule, model)
        rows.append((name, m.makespan, m.makespan_std, m.lateness, m.slack_sum))
    # σ-HEFT: the paper's future-work idea (rank by mean + k·σ).
    m = repro.evaluate_schedule(repro.sigma_heft(workload, model, k=1.0), model)
    rows.append(("sigma-HEFT", m.makespan, m.makespan_std, m.lateness, m.slack_sum))

    # Random population for reference (paper: 10 000; 200 suffices here).
    rand = [
        repro.evaluate_schedule(s, model)
        for s in repro.random_schedules(workload, 200, rng=7)
    ]
    ms = np.array([r.makespan for r in rand])
    sd = np.array([r.makespan_std for r in rand])
    rows.append(("random (best)", ms.min(), sd[ms.argmin()], float("nan"), float("nan")))
    rows.append(("random (median)", float(np.median(ms)), float(np.median(sd)), float("nan"), float("nan")))

    print(f"workload: {workload.graph.name} on {workload.m} machines, UL={model.ul}")
    print(format_table(["scheduler", "E(M)", "sigma_M", "lateness", "slack"], rows))

    best = min(rows[:6], key=lambda r: r[1])
    print(f"\nbest heuristic by expected makespan: {best[0]} ({best[1]:.1f})")
    frac = float((ms < best[1]).mean())
    print(f"fraction of 200 random schedules beating it: {frac:.1%}")


if __name__ == "__main__":
    main()
